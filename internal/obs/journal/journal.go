// Package journal is the durable half of the telemetry plane: an
// append-only, segmented, checksummed on-disk log of the stream hub's
// rare-path events (blocked anomalies with their frozen forensic
// context, enhancement audits, spec hot-swaps and store publications,
// session attach/detach finals, fleet health ticks), so a daemon crash
// or restart no longer destroys the evidence trail the enforcement
// model exists to produce.
//
// Architecture: the journal never sits on the check path. It is an
// ordinary hub subscriber — a single writer goroutine drains its
// bounded subscription ring and appends frames to the active segment;
// when the writer falls behind, the hub sheds events into the
// subscription's drop counter (accounted in the journal's stats, never
// blocking a publisher). Clean check rounds never publish, so with
// journaling enabled and zero anomalies the sealed check path does not
// change by a single instruction.
//
// On-disk format: numbered segment files (journal-NNNNNNNN.seg), each
// beginning with an 8-byte magic and holding length-prefixed frames:
//
//	[u32le payload length][u32le CRC32C(payload)][payload]
//
// where the payload is the deterministic binary+JSON event codec
// (stream.Event.MarshalBinary). A reader that hits a short or
// corrupt frame treats it as the torn tail of a crashed write: Open
// truncates the segment back to its last valid frame, counts one
// truncation, and every earlier record survives. Segments rotate on
// size or age and old segments are pruned beyond a retention bound.
//
// Durability is a policy knob: PolicyInterval (default) fsyncs the
// active segment on a ticker, PolicyAlways after every drained batch,
// PolicyNone leaves flushing to the OS (a kill -9 loses at most the
// buffered tail — the frame CRCs make the loss detectable and
// recoverable, not corrupting).
package journal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"sedspec/internal/obs"
	"sedspec/internal/obs/stream"
)

// segMagic opens every segment file; a file without it is not a
// segment (and is left alone by retention pruning).
const segMagic = "SEDJRNL1"

// frameHeader is the fixed per-record overhead: 4-byte length + 4-byte
// CRC32C.
const frameHeader = 8

// maxFrame bounds a single record so a corrupt length field cannot ask
// the reader to allocate gigabytes: health snapshots of very large
// fleets stay well under this.
const maxFrame = 16 << 20

// castagnoli is the CRC32C table (the polynomial with hardware support
// on amd64/arm64, the conventional storage checksum).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FsyncPolicy selects when the active segment is fsynced.
type FsyncPolicy int

const (
	// PolicyInterval fsyncs on a ticker (Options.FsyncInterval): bounded
	// data loss on power failure, negligible per-event cost. The default.
	PolicyInterval FsyncPolicy = iota
	// PolicyAlways fsyncs after every drained batch of events: an
	// anomaly is durable before the writer sleeps again.
	PolicyAlways
	// PolicyNone never fsyncs (the OS flushes on its own schedule). A
	// process kill loses only the bufio tail; a power failure may lose
	// more — either way the CRC framing recovers to the last good frame.
	PolicyNone
)

func (p FsyncPolicy) String() string {
	switch p {
	case PolicyInterval:
		return "interval"
	case PolicyAlways:
		return "always"
	case PolicyNone:
		return "none"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy resolves a policy name ("interval", "always", "none").
func ParsePolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "interval":
		return PolicyInterval, nil
	case "always":
		return PolicyAlways, nil
	case "none":
		return PolicyNone, nil
	default:
		return 0, fmt.Errorf("journal: unknown fsync policy %q (want interval, always, or none)", s)
	}
}

// Options configures a journal. Only Dir is required.
type Options struct {
	// Dir is the directory segment files live in (created if missing).
	Dir string
	// SegmentBytes rotates the active segment when it would exceed this
	// size (default 4 MiB).
	SegmentBytes int64
	// SegmentAge rotates the active segment when its first record is
	// older than this (default 1h), bounding how much history one
	// segment spans so retention pruning has useful granularity.
	SegmentAge time.Duration
	// MaxSegments bounds retention: when rotation would leave more than
	// this many segments, the oldest are deleted (default 16; the
	// default geometry retains 64 MiB of history).
	MaxSegments int
	// Fsync selects the durability policy (default PolicyInterval).
	Fsync FsyncPolicy
	// FsyncInterval is PolicyInterval's ticker period (default 250ms).
	FsyncInterval time.Duration
	// Kinds masks which event kinds persist (default: every kind except
	// the synthesized per-tail drop notices, which are subscriber-local
	// and meaningless in history).
	Kinds stream.KindMask
	// Buffer sizes the hub subscription ring the writer drains (default
	// 4096). A full ring sheds events into the drop counter rather than
	// blocking publishers.
	Buffer int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = 4 << 20
	}
	if out.SegmentAge <= 0 {
		out.SegmentAge = time.Hour
	}
	if out.MaxSegments <= 0 {
		out.MaxSegments = 16
	}
	if out.FsyncInterval <= 0 {
		out.FsyncInterval = 250 * time.Millisecond
	}
	if out.Kinds == 0 {
		out.Kinds = stream.MaskAll &^ stream.MaskOf(stream.KindDrop)
	}
	if out.Buffer <= 0 {
		out.Buffer = 4096
	}
	return out
}

// segment is one on-disk file's in-memory index entry, maintained so
// queries can skip whole files by seq/time bounds without reading them.
type segment struct {
	idx      uint64
	path     string
	bytes    int64 // file size including magic
	records  uint64
	firstSeq uint64
	lastSeq  uint64
	firstNs  int64
	lastNs   int64
}

// Stats is a point-in-time summary of the journal.
type Stats struct {
	Dir          string  `json:"dir"`
	Segments     int     `json:"segments"`
	Bytes        int64   `json:"bytes"`
	Records      uint64  `json:"records"`
	FirstSeq     uint64  `json:"first_seq,omitempty"`
	LastSeq      uint64  `json:"last_seq,omitempty"`
	Appended     uint64  `json:"appended"`
	Dropped      uint64  `json:"dropped"`
	Truncations  uint64  `json:"truncations"`
	Rotations    uint64  `json:"rotations"`
	Pruned       uint64  `json:"pruned_segments"`
	Fsyncs       uint64  `json:"fsyncs"`
	FsyncP99Us   float64 `json:"fsync_p99_us"`
	EncodeErrors uint64  `json:"encode_errors,omitempty"`
	WriteErrors  uint64  `json:"write_errors,omitempty"`
}

// Journal is the durable event log. All methods are safe for
// concurrent use; appends come from the single writer goroutine
// Attach starts (or from Append in tests and tools).
type Journal struct {
	opts Options

	mu       sync.Mutex
	segs     []segment // oldest first; last is the active segment
	f        *os.File  // active segment
	w        *bufio.Writer
	dirty    bool // bytes written since the last fsync
	closed   bool
	appended uint64
	truncs   uint64
	rots     uint64
	pruned   uint64
	fsyncs   uint64
	encErrs  uint64
	wrErrs   uint64
	// fsyncHist counts fsync durations in log2 microsecond buckets
	// (bucket 0 = sub-microsecond), the same shape obs.Hist interpolates
	// quantiles from.
	fsyncHist [obs.NumBuckets]uint64

	sub  *stream.Sub
	done chan struct{}
	wg   sync.WaitGroup
}

// Open opens (creating if needed) the journal at opts.Dir, scanning
// existing segments into the index and recovering a torn tail: any
// segment whose final frame is short or fails its CRC is truncated
// back to the last valid frame (one truncation counted per repaired
// file). Appends resume into the newest segment.
func Open(opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("journal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	j := &Journal{opts: opts, done: make(chan struct{})}

	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		var idx uint64
		if ent.IsDir() {
			continue
		}
		if _, err := fmt.Sscanf(ent.Name(), "journal-%d.seg", &idx); err != nil {
			continue
		}
		seg, truncated, err := j.scanSegment(filepath.Join(opts.Dir, ent.Name()), idx)
		if err != nil {
			return nil, err
		}
		if truncated {
			j.truncs++
		}
		j.segs = append(j.segs, seg)
	}
	sort.Slice(j.segs, func(a, b int) bool { return j.segs[a].idx < j.segs[b].idx })

	// Resume into the newest segment unless it is already over the
	// rotation bound; otherwise start a fresh one.
	if n := len(j.segs); n > 0 && j.segs[n-1].bytes < opts.SegmentBytes {
		act := &j.segs[n-1]
		f, err := os.OpenFile(act.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := f.Seek(act.bytes, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		j.f = f
	} else {
		if err := j.newSegmentLocked(); err != nil {
			return nil, err
		}
	}
	j.w = bufio.NewWriterSize(j.f, 64<<10)
	return j, nil
}

// scanSegment walks one file's frames, validating lengths and CRCs,
// and truncates the file at the last valid frame if the tail is torn.
func (j *Journal) scanSegment(path string, idx uint64) (segment, bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return segment{}, false, err
	}
	defer f.Close()

	seg := segment{idx: idx, path: path}
	r := bufio.NewReaderSize(f, 64<<10)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != segMagic {
		// A segment too short for its magic (or with the wrong one) is a
		// write torn inside the header: reset it to an empty segment.
		if err := f.Truncate(0); err != nil {
			return segment{}, false, err
		}
		if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
			return segment{}, false, err
		}
		seg.bytes = int64(len(segMagic))
		return seg, true, nil
	}
	valid := int64(len(segMagic))
	var hdr [frameHeader]byte
	var payload []byte
	torn := false
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			torn = err != io.EOF
			break
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxFrame {
			torn = true
			break
		}
		if uint32(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			torn = true
			break
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			torn = true
			break
		}
		var ev stream.Event
		if err := ev.UnmarshalBinary(payload); err != nil {
			torn = true
			break
		}
		valid += frameHeader + int64(n)
		seg.records++
		if seg.records == 1 {
			seg.firstSeq, seg.firstNs = ev.Seq, ev.TimeNs
		}
		seg.lastSeq, seg.lastNs = ev.Seq, ev.TimeNs
	}
	info, err := f.Stat()
	if err != nil {
		return segment{}, false, err
	}
	truncated := false
	if info.Size() != valid {
		// Bytes beyond the last valid frame: the torn tail of a crashed
		// write (or trailing garbage). Drop them so appends resume on a
		// clean frame boundary.
		if err := f.Truncate(valid); err != nil {
			return segment{}, false, err
		}
		truncated = true
	} else if torn {
		// A mid-file validation failure that still consumed the whole
		// size (cannot happen with the reads above, but keep the
		// accounting honest if the logic ever changes).
		truncated = true
	}
	seg.bytes = valid
	return seg, truncated, nil
}

// newSegmentLocked creates and activates the next segment file. Called
// with j.mu held (or before the journal is shared).
func (j *Journal) newSegmentLocked() error {
	var idx uint64 = 1
	if n := len(j.segs); n > 0 {
		idx = j.segs[n-1].idx + 1
	}
	path := filepath.Join(j.opts.Dir, fmt.Sprintf("journal-%08d.seg", idx))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	j.f = f
	j.segs = append(j.segs, segment{idx: idx, path: path, bytes: int64(len(segMagic))})
	return nil
}

// Attach subscribes the journal to the hub and starts the writer
// goroutine (plus the fsync ticker under PolicyInterval). Events
// matching Options.Kinds are drained and appended; overflow while the
// writer is busy is shed by the hub into the subscription's drop
// counter. Close stops everything and flushes.
func (j *Journal) Attach(hub *stream.Hub) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.sub != nil || j.closed {
		return
	}
	j.sub = hub.Subscribe(stream.WithKinds(j.opts.Kinds), stream.WithBuffer(j.opts.Buffer))
	j.wg.Add(1)
	go j.drain(j.sub)
	if j.opts.Fsync == PolicyInterval {
		j.wg.Add(1)
		go j.syncLoop()
	}
}

// drain is the writer goroutine: block for the next event, then sweep
// the whole backlog in one pass so a burst costs one buffered-writer
// flush (and, under PolicyAlways, one fsync) instead of one per event.
func (j *Journal) drain(sub *stream.Sub) {
	defer j.wg.Done()
	for {
		ev, ok := sub.Recv(nil)
		if !ok {
			return
		}
		j.mu.Lock()
		j.appendLocked(&ev)
		for {
			more, ok := sub.TryRecv()
			if !ok {
				break
			}
			j.appendLocked(&more)
		}
		if j.opts.Fsync == PolicyAlways {
			j.syncLocked()
		}
		j.mu.Unlock()
	}
}

// syncLoop is PolicyInterval's ticker: flush+fsync when bytes are
// waiting, skip clean ticks.
func (j *Journal) syncLoop() {
	defer j.wg.Done()
	t := time.NewTicker(j.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-j.done:
			return
		case <-t.C:
			j.mu.Lock()
			if !j.closed {
				j.syncLocked()
			}
			j.mu.Unlock()
		}
	}
}

// Append encodes and appends one event directly (the writer goroutine
// path is Attach; Append serves tools and tests). It does not fsync.
func (j *Journal) Append(ev *stream.Event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	return j.appendLocked(ev)
}

func (j *Journal) appendLocked(ev *stream.Event) error {
	payload, err := ev.MarshalBinary()
	if err != nil {
		j.encErrs++
		return err
	}
	frame := int64(frameHeader + len(payload))
	act := &j.segs[len(j.segs)-1]
	if act.records > 0 &&
		(act.bytes+frame > j.opts.SegmentBytes ||
			(ev.TimeNs-act.firstNs) > j.opts.SegmentAge.Nanoseconds()) {
		if err := j.rotateLocked(); err != nil {
			j.wrErrs++
			return err
		}
		act = &j.segs[len(j.segs)-1]
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := j.w.Write(hdr[:]); err != nil {
		j.wrErrs++
		return err
	}
	if _, err := j.w.Write(payload); err != nil {
		j.wrErrs++
		return err
	}
	act.bytes += frame
	act.records++
	if act.records == 1 {
		act.firstSeq, act.firstNs = ev.Seq, ev.TimeNs
	}
	act.lastSeq, act.lastNs = ev.Seq, ev.TimeNs
	j.appended++
	j.dirty = true
	return nil
}

// rotateLocked seals the active segment (flush, fsync, close), opens
// the next one, and prunes retention.
func (j *Journal) rotateLocked() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	j.timedSync()
	if err := j.f.Close(); err != nil {
		return err
	}
	if err := j.newSegmentLocked(); err != nil {
		return err
	}
	j.w.Reset(j.f)
	j.rots++
	for len(j.segs) > j.opts.MaxSegments {
		old := j.segs[0]
		if err := os.Remove(old.path); err != nil && !os.IsNotExist(err) {
			return err
		}
		j.segs = j.segs[1:]
		j.pruned++
	}
	return nil
}

// syncLocked flushes the buffered writer and fsyncs if anything was
// written since the last sync.
func (j *Journal) syncLocked() {
	if err := j.w.Flush(); err != nil {
		j.wrErrs++
		return
	}
	if !j.dirty {
		return
	}
	j.timedSync()
	j.dirty = false
}

// timedSync fsyncs the active segment, recording the duration into the
// log2-microsecond histogram behind the p99 stat.
func (j *Journal) timedSync() {
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		j.wrErrs++
		return
	}
	us := time.Since(start).Microseconds()
	j.fsyncHist[bucketOf(uint64(us))]++
	j.fsyncs++
}

// bucketOf maps a value to its log2 bucket (0 holds exact zeros),
// mirroring the metrics registry's histogram shape.
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= obs.NumBuckets {
		b = obs.NumBuckets - 1
	}
	return b
}

// Sync forces a flush+fsync of the active segment.
func (j *Journal) Sync() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.closed {
		j.syncLocked()
	}
}

// Stats snapshots the journal's counters and index totals.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statsLocked()
}

func (j *Journal) statsLocked() Stats {
	st := Stats{
		Dir:          j.opts.Dir,
		Segments:     len(j.segs),
		Appended:     j.appended,
		Truncations:  j.truncs,
		Rotations:    j.rots,
		Pruned:       j.pruned,
		Fsyncs:       j.fsyncs,
		EncodeErrors: j.encErrs,
		WriteErrors:  j.wrErrs,
	}
	for i := range j.segs {
		s := &j.segs[i]
		st.Bytes += s.bytes
		st.Records += s.records
		if s.records > 0 {
			if st.FirstSeq == 0 {
				st.FirstSeq = s.firstSeq
			}
			st.LastSeq = s.lastSeq
		}
	}
	if j.sub != nil {
		st.Dropped = j.sub.Dropped()
	}
	hist := obs.Hist{Buckets: j.fsyncHist}
	st.FsyncP99Us = hist.Quantile(0.99)
	return st
}

// Status shapes the journal's stats as the health aggregator's
// JournalStatus, for Health.SetJournal.
func (j *Journal) Status() stream.JournalStatus {
	st := j.Stats()
	return stream.JournalStatus{
		Dir:         st.Dir,
		Segments:    st.Segments,
		Bytes:       st.Bytes,
		Records:     st.Records,
		LastSeq:     st.LastSeq,
		Dropped:     st.Dropped,
		Truncations: st.Truncations,
		Fsyncs:      st.Fsyncs,
		FsyncP99Us:  st.FsyncP99Us,
	}
}

// Close stops the writer (draining the subscription's remaining
// backlog first), fsyncs the active segment, and closes it.
// Idempotent; Query remains usable on a closed journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	sub := j.sub
	j.mu.Unlock()

	// Detach from the hub: Recv keeps delivering the buffered backlog
	// and reports done once drained, so the writer goroutine exits only
	// after persisting everything it was offered.
	if sub != nil {
		sub.Close()
	}
	close(j.done)
	j.wg.Wait()

	j.mu.Lock()
	defer j.mu.Unlock()
	j.syncLocked()
	j.closed = true
	return j.f.Close()
}
