package scsi

import "sedspec/internal/ir"

// buildESPCommands emits the ESP command register dispatch and the two
// selection paths that assemble a CDB into cmdbuf: from the TI FIFO
// (SELATN) and from guest memory via DMA (DMA-select, the CVE-2015-5158
// site).
func buildESPCommands(b *ir.Builder, opts Options, tiBuf, tiWptr, tiRptr, cmdBuf, phase,
	sense, status, intr, seq, copyI, dmaAddr, irqCb ir.FieldID) {

	h := b.Handler("esp_do_command")
	e := h.Block("entry").CmdDecision()
	v := e.IOIn(ir.W8, "cmd = val")
	e.Switch(v, "switch (cmd)", "c_unknown",
		ir.Case(ESPNop, "c_nop"),
		ir.Case(ESPFlush, "c_flush"),
		ir.Case(ESPReset, "c_reset"),
		ir.Case(ESPXferInfo, "c_xfer"),
		ir.Case(ESPMsgAcc, "c_msgacc"),
		ir.Case(ESPSelATN, "c_selatn"),
		ir.Case(ESPSelNATN, "c_selnatn"),
		ir.Case(ESPSetATN, "c_setatn"),
		ir.Case(ESPDMASel, "c_dmasel"),
	)

	np := h.Block("c_nop").CmdEnd()
	np.Return("return")

	fl := h.Block("c_flush").CmdEnd()
	z := fl.Const(0, "0")
	fl.Store(tiWptr, z, "s->ti_wptr = 0")
	fl.Store(tiRptr, z, "s->ti_rptr = 0")
	fl.Return("return")

	rs := h.Block("c_reset").CmdEnd()
	zr := rs.Const(0, "0")
	rs.Store(tiWptr, zr, "s->ti_wptr = 0")
	rs.Store(tiRptr, zr, "s->ti_rptr = 0")
	rs.Store(phase, zr, "s->phase = 0")
	rs.Store(sense, zr, "s->sense = 0")
	rs.Store(status, zr, "s->status = 0")
	rs.Store(seq, zr, "s->seq = 0")
	rs.Return("return")

	// TRANSFER INFO: acknowledge the current phase and interrupt.
	xf := h.Block("c_xfer").CmdEnd()
	sq := xf.Const(0x04, "SEQ_CD")
	xf.Store(seq, sq, "s->seq = SEQ_CD")
	ib := xf.Const(0x18, "INTR_BS | INTR_FC")
	xf.Store(intr, ib, "s->intr = INTR_BS | INTR_FC")
	xf.CallPtr(irqCb, "esp_raise_irq(s)")
	xf.Return("return")

	ma := h.Block("c_msgacc").CmdEnd()
	mi := ma.Const(0x20, "INTR_DC")
	ma.Store(intr, mi, "s->intr = INTR_DC")
	ma.CallPtr(irqCb, "esp_raise_irq(s)")
	ma.Return("return")

	// SELECT with ATN: copy the CDB from the TI FIFO into cmdbuf. The
	// copy is bounded by ti_wptr — which CVE-2016-4439 lets an attacker
	// corrupt.
	sa := h.Block("c_selatn")
	za := sa.Const(0, "0")
	sa.Store(copyI, za, "i = 0")
	sa.Jump("sel_copy", "goto copy")

	cl := h.Block("sel_copy")
	i := cl.Load(copyI, "i")
	n := cl.Load(tiWptr, "len = s->ti_wptr")
	cl.Branch(i, ir.RelGE, n, ir.W8, false, "while (i < len)", "sel_parse", "sel_byte")
	cb := h.Block("sel_byte")
	i2 := cb.Load(copyI, "i")
	bv := cb.BufLoad(tiBuf, i2, ir.W8, false, "v = s->ti_buf[i]")
	cb.BufStore(cmdBuf, i2, bv, ir.W8, false, "s->cmdbuf[i] = v")
	one := cb.Const(1, "1")
	i3 := cb.Arith(ir.ALUAdd, i2, one, ir.W8, false, "i + 1")
	cb.Store(copyI, i3, "i++")
	cb.Jump("sel_copy", "continue")

	sp := h.Block("sel_parse")
	sp.Call("scsi_do_cdb", "scsi_req_new(s->cmdbuf)")
	sp.Return("return")

	// SELECT without ATN (rare in training): same copy, different
	// sequencing.
	sn := h.Block("c_selnatn")
	zn := sn.Const(0, "0")
	sn.Store(copyI, zn, "i = 0")
	sq2 := sn.Const(0x02, "SEQ_SELNATN")
	sn.Store(seq, sq2, "s->seq = SEQ_SELNATN")
	sn.Jump("sel_copy", "goto copy")

	st := h.Block("c_setatn").CmdEnd()
	av := st.Const(0x08, "ATN")
	st.Store(seq, av, "s->seq |= ATN")
	st.Return("return")

	// DMA select: the command block arrives via DMA. Its length comes
	// from the transfer header in guest memory — a temporary with no
	// relation to device-state parameters, so the parameter check cannot
	// bound it (CVE-2015-5158).
	ds := h.Block("c_dmasel")
	addr := ds.Load(dmaAddr, "addr = s->dma_addr")
	hdr := ds.DMARead(addr, ir.W8, "cmdlen = ldub(addr) /* message header */")
	if opts.Fix5158 {
		lim := ds.Const(CmdBufSize, "sizeof(s->cmdbuf)")
		ds.Branch(hdr, ir.RelGT, lim, ir.W8, false,
			"if (cmdlen > sizeof(s->cmdbuf)) /* CVE-2015-5158 fix */", "dma_bad", "dma_copy")
		db := h.Block("dma_bad")
		bs := db.Const(0x80, "SENSE_ILLEGAL")
		db.Store(sense, bs, "s->sense = ILLEGAL_REQUEST")
		db.Return("return")
	} else {
		ds.Jump("dma_copy", "/* no length check: CVE-2015-5158 */")
	}
	dc := h.Block("dma_copy")
	addr2 := dc.Load(dmaAddr, "addr")
	one2 := dc.Const(1, "1")
	src := dc.Arith(ir.ALUAdd, addr2, one2, ir.W32, false, "addr + 1")
	zi := dc.Const(0, "0")
	dc.DMAToBuf(cmdBuf, zi, src, hdr, false, "memcpy(s->cmdbuf, buf, cmdlen)")
	dc.Call("scsi_do_cdb", "scsi_req_new(s->cmdbuf)")
	dc.Return("return")

	un := h.Block("c_unknown").CmdEnd()
	uv := un.Const(0x40, "INTR_ILL")
	un.Store(intr, uv, "s->intr = INTR_ILL")
	un.Return("return")
}

// buildSCSICommands emits CDB parsing and the SCSI command set: the opcode
// switch is a second command-decision point, and corrupted command blocks
// land in its untrained arms.
func buildSCSICommands(b *ir.Builder, tiBuf, tiWptr, tiRptr, cmdBuf, phase, sense,
	status, intr, copyI, lba, xferBlocks, dmaAddr, dataBuf, irqCb ir.FieldID) {

	h := b.Handler("scsi_do_cdb")
	e := h.Block("entry").CmdDecision()
	one := e.Const(1, "1")
	op := e.BufLoad(cmdBuf, one, ir.W8, false, "opcode = s->cmdbuf[1]")
	e.Switch(op, "switch (opcode)", "s_unknown",
		ir.Case(ScsiTestUnitReady, "s_tur"),
		ir.Case(ScsiRequestSense, "s_sense"),
		ir.Case(ScsiInquiry, "s_inquiry"),
		ir.Case(ScsiModeSense, "s_modesense"),
		ir.Case(ScsiReadCapacity, "s_readcap"),
		ir.Case(ScsiRead10, "s_read10"),
		ir.Case(ScsiWrite10, "s_write10"),
		ir.Case(ScsiReportLuns, "s_reportluns"),
	)

	finish := func(blk *ir.BlockBuilder, ph uint64) {
		pv := blk.Const(ph, "phase")
		blk.Store(phase, pv, "s->phase = phase")
		gd := blk.Const(0, "GOOD")
		blk.Store(status, gd, "s->status = GOOD")
		iv := blk.Const(0x18, "INTR_BS | INTR_FC")
		blk.Store(intr, iv, "s->intr = INTR_BS | INTR_FC")
		blk.CallPtr(irqCb, "esp_raise_irq(s)")
	}

	// fillTI stages n response bytes (from a recognizable pattern) into
	// the TI FIFO for the guest to drain.
	fillTI := func(blk *ir.BlockBuilder, n uint64, seed uint64) {
		z := blk.Const(0, "0")
		blk.Store(tiRptr, z, "s->ti_rptr = 0")
		for k := uint64(0); k < n; k++ {
			ki := blk.Const(k, "k")
			kv := blk.Const(seed+k, "data[k]")
			blk.BufStore(tiBuf, ki, kv, ir.W8, false, "s->ti_buf[k] = data[k]")
		}
		nv := blk.Const(n, "n")
		blk.Store(tiWptr, nv, "s->ti_wptr = n")
	}

	tu := h.Block("s_tur").CmdEnd()
	finish(tu, 0)
	tu.Return("return")

	se := h.Block("s_sense").CmdEnd()
	fillTI(se, 8, 0x70)
	sv := se.Load(sense, "v = s->sense")
	zi := se.Const(2, "2")
	se.BufStore(tiBuf, zi, sv, ir.W8, false, "s->ti_buf[2] = s->sense")
	zc := se.Const(0, "0")
	se.Store(sense, zc, "s->sense = 0")
	finish(se, 1)
	se.Return("return")

	iq := h.Block("s_inquiry").CmdEnd()
	fillTI(iq, 16, 0x30)
	finish(iq, 1)
	iq.Return("return")

	ms := h.Block("s_modesense").CmdEnd()
	fillTI(ms, 12, 0x50)
	finish(ms, 1)
	ms.Return("return")

	rc := h.Block("s_readcap").CmdEnd()
	fillTI(rc, 8, 0x10)
	finish(rc, 1)
	rc.Return("return")

	rl := h.Block("s_reportluns").CmdEnd()
	fillTI(rl, 16, 0x00)
	finish(rl, 1)
	rl.Return("return")

	// READ(10)/WRITE(10): parse LBA and block count from the CDB, then
	// loop block transfers between the medium and the guest DMA address.
	parse := func(blk *ir.BlockBuilder) {
		var acc ir.Temp
		for k := uint64(0); k < 4; k++ {
			ki := blk.Const(3+k, "3+k")
			bv := blk.BufLoad(cmdBuf, ki, ir.W8, false, "lba byte")
			if k == 0 {
				acc = bv
				continue
			}
			eight := blk.Const(8, "8")
			sh := blk.Arith(ir.ALUShl, acc, eight, ir.W32, false, "lba << 8")
			acc = blk.Arith(ir.ALUOr, sh, bv, ir.W32, false, "lba | byte")
		}
		blk.Store(lba, acc, "s->lba = be32(cmdbuf + 3)")
		ni := blk.Const(8, "8")
		nb := blk.BufLoad(cmdBuf, ni, ir.W8, false, "blocks = s->cmdbuf[8]")
		blk.Store(xferBlocks, nb, "s->xfer_blocks = blocks")
	}

	xfer := func(label string, write bool) {
		blk := h.Block(label)
		parse(blk)
		blk.Jump(label+"_loop", "goto loop")

		lp := h.Block(label + "_loop")
		left := lp.Load(xferBlocks, "left = s->xfer_blocks")
		z := lp.Const(0, "0")
		lp.Branch(left, ir.RelGT, z, ir.W16, false, "while (left > 0)", label+"_blk", label+"_done")

		bb := h.Block(label + "_blk")
		addr := bb.Load(dmaAddr, "addr = s->dma_addr")
		bs := bb.Const(BlockSize, "512")
		z2 := bb.Const(0, "0")
		if write {
			bb.DMAToBuf(dataBuf, z2, addr, bs, false, "dma_memory_read(addr, s->databuf, 512)")
		} else {
			bb.DMAFromBuf(dataBuf, z2, addr, bs, false, "dma_memory_write(addr, s->databuf, 512)")
		}
		bb.Work(bs, "scsi_disk_emulate_io(s)")
		a2 := bb.Arith(ir.ALUAdd, addr, bs, ir.W32, false, "addr + 512")
		bb.Store(dmaAddr, a2, "s->dma_addr = addr + 512")
		l2 := bb.Load(xferBlocks, "left")
		one2 := bb.Const(1, "1")
		l3 := bb.Arith(ir.ALUSub, l2, one2, ir.W16, false, "left - 1")
		bb.Store(xferBlocks, l3, "s->xfer_blocks = left - 1")
		lb := bb.Load(lba, "lba")
		lb2 := bb.Arith(ir.ALUAdd, lb, one2, ir.W32, false, "lba + 1")
		bb.Store(lba, lb2, "s->lba = lba + 1")
		bb.Jump(label+"_loop", "continue")

		dn := h.Block(label + "_done").CmdEnd()
		finish(dn, 3)
		dn.Return("return")
	}
	xfer("s_read10", false)
	xfer("s_write10", true)

	un := h.Block("s_unknown").CmdEnd()
	bad := un.Const(0x20, "ILLEGAL_OPCODE")
	un.Store(sense, bad, "s->sense = ILLEGAL_OPCODE")
	ck := un.Const(0x02, "CHECK_CONDITION")
	un.Store(status, ck, "s->status = CHECK_CONDITION")
	zp := un.Const(0, "0")
	un.Store(phase, zp, "s->phase = 0")
	ivv := un.Const(0x18, "INTR_BS | INTR_FC")
	un.Store(intr, ivv, "s->intr = INTR_BS | INTR_FC")
	un.CallPtr(irqCb, "esp_raise_irq(s)")
	un.Return("return")
	_ = tiWptr
	_ = copyI
}
