package scsi

import (
	"fmt"

	"sedspec/internal/devices/devutil"
)

// Guest drives the controller the way an ESP SCSI driver would: CDBs
// pushed through the TI FIFO (or DMA), ESP commands, interrupt
// acknowledgement, and FIFO draining for data-in responses.
type Guest struct {
	p devutil.Port
	// DMABuf is the guest address used for data transfers and DMA-select
	// command blocks.
	DMABuf uint32
}

// NewGuest wraps a port driver.
func NewGuest(p devutil.Port) *Guest { return &Guest{p: p, DMABuf: 0x6_0000} }

// Cmd issues a raw ESP command.
func (g *Guest) Cmd(v byte) error {
	_, err := g.p.Out8(PortCmd, v)
	return err
}

// PushFIFO writes one byte into the TI FIFO.
func (g *Guest) PushFIFO(v byte) error {
	_, err := g.p.Out8(PortFIFO, v)
	return err
}

// Flush clears the TI FIFO.
func (g *Guest) Flush() error { return g.Cmd(ESPFlush) }

// Reset issues a device reset.
func (g *Guest) Reset() error { return g.Cmd(ESPReset) }

// AckIntr reads (and thereby clears) the interrupt register.
func (g *Guest) AckIntr() (byte, error) {
	out, _, err := g.p.In(PortIntr)
	if err != nil {
		return 0, err
	}
	if len(out) == 0 {
		return 0, fmt.Errorf("scsi: empty INTR read")
	}
	return out[0], nil
}

// Status reads the status register.
func (g *Guest) Status() (byte, error) {
	out, _, err := g.p.In(PortStatus)
	if err != nil {
		return 0, err
	}
	if len(out) == 0 {
		return 0, fmt.Errorf("scsi: empty STATUS read")
	}
	return out[0], nil
}

// SetTC programs the 16-bit transfer count, as a real driver must before
// any DMA operation.
func (g *Guest) SetTC(n uint16) error {
	if _, err := g.p.Out8(PortTCLo, byte(n)); err != nil {
		return err
	}
	_, err := g.p.Out8(PortTCMid, byte(n>>8))
	return err
}

// SetDMA programs the 24-bit DMA address.
func (g *Guest) SetDMA(addr uint32) error {
	for i, port := range []uint64{PortDMALo, PortDMAMid, PortDMAHi} {
		if _, err := g.p.Out8(port, byte(addr>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// Select pushes an identify message plus CDB through the FIFO and issues
// SELECT-with-ATN, then acknowledges the completion interrupt.
func (g *Guest) Select(cdb ...byte) error {
	if err := g.Flush(); err != nil {
		return err
	}
	if err := g.PushFIFO(0x80); err != nil { // identify message
		return err
	}
	for _, v := range cdb {
		if err := g.PushFIFO(v); err != nil {
			return err
		}
	}
	if err := g.Cmd(ESPSelATN); err != nil {
		return err
	}
	_, err := g.AckIntr()
	return err
}

// DrainFIFO pops up to n response bytes.
func (g *Guest) DrainFIFO(n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		b, _, err := g.p.In(PortFIFO)
		if err != nil {
			return out, err
		}
		if len(b) > 0 {
			out = append(out, b[0])
		}
	}
	return out, nil
}

// TestUnitReady issues TEST UNIT READY.
func (g *Guest) TestUnitReady() error { return g.Select(ScsiTestUnitReady, 0, 0, 0, 0, 0) }

// Inquiry issues INQUIRY and drains the response.
func (g *Guest) Inquiry() ([]byte, error) {
	if err := g.Select(ScsiInquiry, 0, 0, 0, 36, 0); err != nil {
		return nil, err
	}
	return g.DrainFIFO(16)
}

// RequestSense issues REQUEST SENSE and drains the response.
func (g *Guest) RequestSense() ([]byte, error) {
	if err := g.Select(ScsiRequestSense, 0, 0, 0, 18, 0); err != nil {
		return nil, err
	}
	return g.DrainFIFO(8)
}

// ModeSense issues MODE SENSE(6).
func (g *Guest) ModeSense() error {
	return g.Select(ScsiModeSense, 0, 0x3F, 0, 12, 0)
}

// ReadCapacity issues READ CAPACITY(10).
func (g *Guest) ReadCapacity() error {
	return g.Select(ScsiReadCapacity, 0, 0, 0, 0, 0, 0, 0, 0, 0)
}

// ReportLuns issues REPORT LUNS.
func (g *Guest) ReportLuns() error {
	return g.Select(ScsiReportLuns, 0, 0, 0, 0, 0, 0, 0, 16, 0)
}

// rw issues READ(10) or WRITE(10) for blocks at lba.
func (g *Guest) rw(op byte, lba uint32, blocks byte) error {
	if err := g.SetDMA(g.DMABuf); err != nil {
		return err
	}
	// CDB layout after the identify byte: [1]=op [2]=flags [3..6]=lba
	// [7]=group [8]=blocks [9]=control.
	return g.Select(op, 0,
		byte(lba>>24), byte(lba>>16), byte(lba>>8), byte(lba),
		0, blocks, 0)
}

// Read10 transfers blocks from the disk to guest memory.
func (g *Guest) Read10(lba uint32, blocks byte) error {
	return g.rw(ScsiRead10, lba, blocks)
}

// Write10 transfers blocks from guest memory to the disk.
func (g *Guest) Write10(lba uint32, blocks byte) error {
	return g.rw(ScsiWrite10, lba, blocks)
}

// DMASelect places a command block (length header, identify message, CDB)
// in guest memory and issues the DMA-select ESP command.
func (g *Guest) DMASelect(cdb []byte) error {
	mem := g.p.Machine().Mem
	blk := append([]byte{byte(len(cdb) + 1), 0x80}, cdb...)
	if err := mem.Write(uint64(g.DMABuf), blk); err != nil {
		return err
	}
	if err := g.SetTC(uint16(len(blk))); err != nil {
		return err
	}
	if err := g.SetDMA(g.DMABuf); err != nil {
		return err
	}
	if err := g.Cmd(ESPDMASel); err != nil {
		return err
	}
	_, err := g.AckIntr()
	return err
}

// XferInfo issues TRANSFER INFO (phase acknowledge).
func (g *Guest) XferInfo() error {
	if err := g.Cmd(ESPXferInfo); err != nil {
		return err
	}
	_, err := g.AckIntr()
	return err
}

// SelNATN issues the rare SELECT-without-ATN command.
func (g *Guest) SelNATN() error {
	if err := g.Cmd(ESPSelNATN); err != nil {
		return err
	}
	_, err := g.AckIntr()
	return err
}

// SetATN issues the rare SET-ATN command.
func (g *Guest) SetATN() error { return g.Cmd(ESPSetATN) }
