// Package scsi models a 53C9X (ESP)-style SCSI controller with a disk
// behind it, as emulated by QEMU (hw/scsi/esp.c + the SCSI bus): the TI
// FIFO and transfer-count registers, ESP commands, CDB parsing, and
// block transfers.
//
// Two QEMU CVEs are seeded:
//
//   - CVE-2016-4439: FIFO writes store at ti_buf[ti_wptr++] with no
//     capacity check, so the write pointer walks out of the 16-byte FIFO
//     into the rest of the structure.
//   - CVE-2015-5158: the DMA-select path copies a command block whose
//     length comes from the transfer header in guest memory — a temporary
//     unrelated to any device-state parameter — into the fixed 32-byte
//     cmdbuf, overflowing it for lengths above 32.
//
// Both corruptions steer later control flow into paths never seen in
// training (unknown SCSI opcodes, impossible phases), which is how the
// conditional-jump check catches them — matching the paper's Table III.
package scsi

import (
	"sedspec/internal/devices/devutil"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// Port offsets.
const (
	PortTCLo   = 0 // transfer count low
	PortTCMid  = 1 // transfer count mid
	PortFIFO   = 2 // TI FIFO
	PortCmd    = 3 // ESP command
	PortStatus = 4 // status (read) / destination id (write)
	PortIntr   = 5 // interrupt status (read clears)
	PortSeq    = 6 // sequence step
	PortDMALo  = 7 // DMA address low byte
	PortDMAMid = 8 // DMA address mid byte
	PortDMAHi  = 9 // DMA address high byte
	// PortCount is the port window size.
	PortCount = 10
)

// ESP commands.
const (
	ESPNop      = 0x00
	ESPFlush    = 0x01
	ESPReset    = 0x02
	ESPXferInfo = 0x10
	ESPSetATN   = 0x1A // rare
	ESPMsgAcc   = 0x12
	ESPSelATN   = 0x42
	ESPSelNATN  = 0x44 // rare
	ESPDMASel   = 0x90
)

// SCSI opcodes dispatched from the CDB.
const (
	ScsiTestUnitReady = 0x00
	ScsiRequestSense  = 0x03
	ScsiInquiry       = 0x12
	ScsiModeSense     = 0x1A
	ScsiReadCapacity  = 0x25
	ScsiRead10        = 0x28
	ScsiWrite10       = 0x2A
	ScsiReportLuns    = 0xA0
)

// Buffer capacities.
const (
	TIBufSize  = 16
	CmdBufSize = 32
	BlockSize  = 512
)

// Options configure the seeded vulnerabilities.
type Options struct {
	// Fix4439 bounds FIFO writes at the TI buffer capacity.
	Fix4439 bool
	// Fix5158 bounds the DMA-select command block length at cmdbuf size.
	Fix5158 bool
}

// Device is the emulated SCSI controller.
type Device struct {
	*devutil.Base
}

// New builds the controller.
func New(opts Options) *Device {
	prog := build(opts)
	return &Device{Base: devutil.NewBase(prog, func(st *interp.State, p *ir.Program) {
		devutil.SetFunc(st, p, "irq_cb", "esp_raise_irq")
	})}
}

func build(opts Options) *ir.Program {
	b := ir.NewBuilder("scsi")

	tiBuf := b.Buf("ti_buf", TIBufSize)
	tiWptr := b.Int("ti_wptr", ir.W8)
	tiRptr := b.Int("ti_rptr", ir.W8)
	cmdBuf := b.Buf("cmdbuf", CmdBufSize)
	phase := b.Int("phase", ir.W8)
	sense := b.Int("sense", ir.W8)
	status := b.Int("status", ir.W8, ir.HWRegister())
	intr := b.Int("intr", ir.W8, ir.HWRegister())
	seq := b.Int("seq", ir.W8, ir.HWRegister())
	tclo := b.Int("tclo", ir.W8, ir.HWRegister())
	tcmid := b.Int("tcmid", ir.W8, ir.HWRegister())
	destID := b.Int("dest_id", ir.W8)
	copyI := b.Int("copy_i", ir.W8)
	lba := b.Int("lba", ir.W32)
	xferBlocks := b.Int("xfer_blocks", ir.W16)
	dmaAddr := b.Int("dma_addr", ir.W32)
	dataBuf := b.Buf("databuf", BlockSize)
	irqCb := b.Func("irq_cb")

	buildDispatch(b, opts, tiBuf, tiWptr, tiRptr, status, intr, seq, tclo, tcmid, destID, dmaAddr)
	buildESPCommands(b, opts, tiBuf, tiWptr, tiRptr, cmdBuf, phase, sense, status, intr, seq, copyI, dmaAddr, irqCb)
	buildSCSICommands(b, tiBuf, tiWptr, tiRptr, cmdBuf, phase, sense, status, intr, copyI, lba, xferBlocks, dmaAddr, dataBuf, irqCb)

	irq := b.Handler("esp_raise_irq")
	e := irq.Block("entry")
	e.IRQRaise("qemu_irq_raise(s->irq)")
	e.Return("return")

	g := b.Handler("host_gadget")
	gb := g.Block("entry")
	pw := gb.Const(0xEE, "0xee")
	gb.Store(status, pw, "/* attacker-controlled execution */")
	gb.Return("return")

	b.Dispatch("esp_ioport")
	return devutil.MustBuild(b)
}

func buildDispatch(b *ir.Builder, opts Options, tiBuf, tiWptr, tiRptr, status, intr, seq, tclo, tcmid, destID, dmaAddr ir.FieldID) {
	h := b.Handler("esp_ioport")
	e := h.Block("entry").Entry()
	isw := e.IOIsWrite("dir = req->write")
	one := e.Const(1, "1")
	e.Branch(isw, ir.RelEQ, one, ir.W8, false, "if (req->write)", "wr", "rd")

	w := h.Block("wr")
	waddr := w.IOAddr("addr = req->addr")
	w.Switch(waddr, "switch (saddr)", "out",
		ir.Case(PortTCLo, "w_tclo"),
		ir.Case(PortTCMid, "w_tcmid"),
		ir.Case(PortFIFO, "w_fifo"),
		ir.Case(PortCmd, "w_cmd"),
		ir.Case(PortStatus, "w_dest"),
		ir.Case(PortDMALo, "w_dmalo"),
		ir.Case(PortDMAMid, "w_dmamid"),
		ir.Case(PortDMAHi, "w_dmahi"),
	)

	store8 := func(label string, f ir.FieldID, stmt string) {
		blk := h.Block(label)
		v := blk.IOIn(ir.W8, "v = val")
		blk.Store(f, v, stmt)
		blk.Jump("out", "goto out")
	}
	store8("w_tclo", tclo, "s->tclo = v")
	store8("w_tcmid", tcmid, "s->tcmid = v")
	store8("w_dest", destID, "s->dest_id = v")

	// DMA address bytes assemble a 24-bit address.
	dmaByte := func(label string, shift uint64) {
		blk := h.Block(label)
		v := blk.IOIn(ir.W8, "v = val")
		cur := blk.Load(dmaAddr, "a = s->dma_addr")
		keep := blk.Const(^(uint64(0xFF)<<shift)&0xFFFF_FFFF, "mask")
		kept := blk.Arith(ir.ALUAnd, cur, keep, ir.W32, false, "a & ~mask")
		sh := blk.Const(shift, "shift")
		vs := blk.Arith(ir.ALUShl, v, sh, ir.W32, false, "v << shift")
		nv := blk.Arith(ir.ALUOr, kept, vs, ir.W32, false, "a | (v << shift)")
		blk.Store(dmaAddr, nv, "s->dma_addr = a")
		blk.Jump("out", "goto out")
	}
	dmaByte("w_dmalo", 0)
	dmaByte("w_dmamid", 8)
	dmaByte("w_dmahi", 16)

	// FIFO write: the CVE-2016-4439 site.
	wf := h.Block("w_fifo")
	v := wf.IOIn(ir.W8, "v = val")
	wp := wf.Load(tiWptr, "w = s->ti_wptr")
	if opts.Fix4439 {
		lim := wf.Const(TIBufSize, "TI_BUFSZ")
		wf.Branch(wp, ir.RelGE, lim, ir.W8, false,
			"if (s->ti_wptr >= TI_BUFSZ) /* CVE-2016-4439 fix */", "w_fifo_full", "w_fifo_store")
		h.Block("w_fifo_full").Jump("out", "goto out /* dropped */")
		fs := h.Block("w_fifo_store")
		v2 := fs.IOIn(ir.W8, "v") // re-read not needed; keep temp chain simple
		_ = v2
		wp2 := fs.Load(tiWptr, "w")
		fs.BufStore(tiBuf, wp2, v, ir.W8, false, "s->ti_buf[s->ti_wptr] = v")
		one2 := fs.Const(1, "1")
		wn := fs.Arith(ir.ALUAdd, wp2, one2, ir.W8, false, "w + 1")
		fs.Store(tiWptr, wn, "s->ti_wptr++")
		fs.Jump("out", "goto out")
	} else {
		wf.BufStore(tiBuf, wp, v, ir.W8, false, "s->ti_buf[s->ti_wptr] = v /* no bound: CVE-2016-4439 */")
		one2 := wf.Const(1, "1")
		wn := wf.Arith(ir.ALUAdd, wp, one2, ir.W8, false, "w + 1")
		wf.Store(tiWptr, wn, "s->ti_wptr++")
		wf.Jump("out", "goto out")
	}

	wc := h.Block("w_cmd")
	wc.Call("esp_do_command", "esp_reg_write(s, ESP_CMD, v)")
	wc.Jump("out", "goto out")

	// Reads.
	r := h.Block("rd")
	raddr := r.IOAddr("addr = req->addr")
	r.Switch(raddr, "switch (saddr)", "out",
		ir.Case(PortFIFO, "r_fifo"),
		ir.Case(PortStatus, "r_status"),
		ir.Case(PortIntr, "r_intr"),
		ir.Case(PortSeq, "r_seq"),
		ir.Case(PortTCLo, "r_tclo"),
		ir.Case(PortTCMid, "r_tcmid"),
	)
	emit := func(label string, f ir.FieldID, stmt string) {
		blk := h.Block(label)
		vv := blk.Load(f, stmt)
		blk.IOOut(vv, ir.W8, "return v")
		blk.Jump("out", "goto out")
	}
	emit("r_status", status, "v = s->status")
	emit("r_seq", seq, "v = s->seq")
	emit("r_tclo", tclo, "v = s->tclo")
	emit("r_tcmid", tcmid, "v = s->tcmid")

	// Reading INTR clears it and lowers the line.
	ri := h.Block("r_intr")
	iv := ri.Load(intr, "v = s->intr")
	ri.IOOut(iv, ir.W8, "return v")
	z := ri.Const(0, "0")
	ri.Store(intr, z, "s->intr = 0")
	ri.IRQLower("qemu_irq_lower(s->irq)")
	ri.Jump("out", "goto out")

	// FIFO read: bounded by the read/write pointers.
	rf := h.Block("r_fifo")
	rp := rf.Load(tiRptr, "r = s->ti_rptr")
	wpp := rf.Load(tiWptr, "w = s->ti_wptr")
	rf.Branch(rp, ir.RelGE, wpp, ir.W8, false, "if (r >= w)", "r_fifo_empty", "r_fifo_pop")
	fe := h.Block("r_fifo_empty")
	zv := fe.Const(0, "0")
	fe.IOOut(zv, ir.W8, "return 0")
	fe.Jump("out", "goto out")
	fp := h.Block("r_fifo_pop")
	rp2 := fp.Load(tiRptr, "r")
	pv := fp.BufLoad(tiBuf, rp2, ir.W8, false, "v = s->ti_buf[r]")
	fp.IOOut(pv, ir.W8, "return v")
	one3 := fp.Const(1, "1")
	rn := fp.Arith(ir.ALUAdd, rp2, one3, ir.W8, false, "r + 1")
	fp.Store(tiRptr, rn, "s->ti_rptr++")
	fp.Jump("out", "goto out")

	h.Block("out").Exit().Halt("return")
}
