package scsi_test

import (
	"errors"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/scsi"
	"sedspec/internal/machine"
	"sedspec/internal/workload"
)

func setup(t *testing.T, opts scsi.Options) (*sedspec.Machine, *sedspec.Attached, *scsi.Guest) {
	t.Helper()
	m := sedspec.NewMachine(machine.WithMemory(1 << 20))
	dev := scsi.New(opts)
	att := m.Attach(dev, machine.WithPIO(0, scsi.PortCount))
	return m, att, scsi.NewGuest(sedspec.NewDriver(att))
}

func train(d *sedspec.Driver) error {
	return workload.TrainSCSI(d, workload.TrainConfig{Light: true})
}

func TestInquiryReturnsData(t *testing.T) {
	_, _, g := setup(t, scsi.Options{})
	data, err := g.Inquiry()
	if err != nil {
		t.Fatalf("Inquiry: %v", err)
	}
	if len(data) != 16 || data[0] != 0x30 {
		t.Errorf("inquiry data = %x", data)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m, _, g := setup(t, scsi.Options{})
	want := make([]byte, 512)
	for i := range want {
		want[i] = byte(i ^ 0x5A)
	}
	if err := m.Mem.Write(uint64(g.DMABuf), want); err != nil {
		t.Fatal(err)
	}
	if err := g.Write10(100, 1); err != nil {
		t.Fatalf("Write10: %v", err)
	}
	// The block was staged through databuf; read it back elsewhere.
	g.DMABuf = 0x7_0000
	if err := g.Read10(100, 1); err != nil {
		t.Fatalf("Read10: %v", err)
	}
	got := make([]byte, 512)
	if err := m.Mem.Read(0x7_0000, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestUnknownOpcodeSetsCheckCondition(t *testing.T) {
	_, _, g := setup(t, scsi.Options{})
	if err := g.Select(0xEE, 0, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	st, err := g.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st != 0x02 {
		t.Errorf("status = %#x, want CHECK_CONDITION", st)
	}
	sense, err := g.RequestSense()
	if err != nil {
		t.Fatal(err)
	}
	if len(sense) < 3 || sense[2] != 0x20 {
		t.Errorf("sense = %x, want ILLEGAL_OPCODE at [2]", sense)
	}
}

// cve4439 overflows the TI FIFO write pointer, corrupting it to a chosen
// value and spilling attacker bytes into cmdbuf and beyond.
func cve4439(g *scsi.Guest, writes int) error {
	for i := 0; i < writes; i++ {
		if err := g.PushFIFO(0x41); err != nil {
			return err
		}
	}
	return nil
}

func TestCVE4439UnprotectedCorruptsStructure(t *testing.T) {
	_, att, g := setup(t, scsi.Options{})
	// The write pointer marches past the 16-byte FIFO: writes 17+ walk
	// through ti_wptr/ti_rptr and into cmdbuf.
	if err := cve4439(g, 40); err != nil {
		t.Fatal(err)
	}
	wp, _ := att.Dev().State().IntByName("ti_wptr")
	if wp != 40 {
		t.Errorf("ti_wptr = %d, want 40 (unbounded)", wp)
	}
	prog := att.Dev().Program()
	if got := att.Dev().State().Buf(prog.FieldIndex("cmdbuf"))[0]; got != 0x41 {
		t.Errorf("cmdbuf[0] = %#x, want 0x41 (spilled FIFO byte)", got)
	}
}

func TestCVE4439Fix(t *testing.T) {
	_, att, g := setup(t, scsi.Options{Fix4439: true})
	if err := cve4439(g, 40); err != nil {
		t.Fatal(err)
	}
	wp, _ := att.Dev().State().IntByName("ti_wptr")
	if wp != scsi.TIBufSize {
		t.Errorf("ti_wptr = %d, want %d (clamped)", wp, scsi.TIBufSize)
	}
}

func learn(t *testing.T, att *sedspec.Attached) *sedspec.Spec {
	t.Helper()
	spec, err := sedspec.Learn(att, train)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	return spec
}

func TestBenignPassesUnderProtection(t *testing.T) {
	m, att, _ := setup(t, scsi.Options{})
	spec := learn(t, att)
	chk := sedspec.Protect(att, spec)
	if err := train(sedspec.NewDriver(att)); err != nil {
		t.Fatalf("benign traffic blocked: %v", err)
	}
	if m.Halted() {
		t.Fatal("halted on benign traffic")
	}
	st := chk.Stats()
	if st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies != 0 {
		t.Fatalf("anomalies on benign traffic: %+v", st)
	}
}

func TestCVE4439CaughtByParameterCheck(t *testing.T) {
	m, att, g := setup(t, scsi.Options{})
	spec := learn(t, att)
	sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyParameter))
	err := cve4439(g, 17)
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyParameter {
		t.Fatalf("want parameter anomaly, got %v", err)
	}
	if !m.Halted() {
		t.Error("machine should halt")
	}
}

func TestCVE4439CaughtByConditionalCheck(t *testing.T) {
	// With only the conditional check active, the overflow itself
	// proceeds (mirrored on the shadow), but the corrupted command block
	// parses to an opcode never seen in training.
	m, att, g := setup(t, scsi.Options{})
	spec := learn(t, att)
	sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyConditionalJump))

	if err := cve4439(g, 17); err != nil {
		t.Fatalf("overflow phase should pass conditional-only: %v", err)
	}
	// SELATN now copies using the corrupted write pointer; the resulting
	// CDB dispatches an unknown opcode.
	err := g.Cmd(scsi.ESPSelATN)
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyConditionalJump {
		t.Fatalf("want conditional-jump anomaly, got %v", err)
	}
	if !m.Halted() {
		t.Error("machine should halt")
	}
}

// cve5158 issues a DMA-select whose guest command block declares a length
// far beyond cmdbuf.
func cve5158(g *scsi.Guest, m *sedspec.Machine) error {
	blk := make([]byte, 201)
	blk[0] = 200 // length header
	for i := 1; i < len(blk); i++ {
		blk[i] = 0xEE // spills an unknown opcode over cmdbuf and onward
	}
	if err := m.Mem.Write(uint64(g.DMABuf), blk); err != nil {
		return err
	}
	if err := g.SetDMA(g.DMABuf); err != nil {
		return err
	}
	return g.Cmd(scsi.ESPDMASel)
}

func TestCVE5158UnprotectedCorrupts(t *testing.T) {
	m, att, g := setup(t, scsi.Options{})
	if err := cve5158(g, m); err != nil {
		t.Fatalf("exploit errored: %v", err)
	}
	// The cmdbuf overflow spilled across the structure. phase/sense are
	// rewritten by the unknown-command epilogue, so check a field the
	// epilogue does not touch.
	if v, _ := att.Dev().State().IntByName("dest_id"); v != 0xEE {
		t.Errorf("dest_id = %#x, want 0xEE (spilled command block)", v)
	}
}

func TestCVE5158Fix(t *testing.T) {
	m, att, g := setup(t, scsi.Options{Fix5158: true})
	if err := cve5158(g, m); err != nil {
		t.Fatalf("patched device errored: %v", err)
	}
	if v, _ := att.Dev().State().IntByName("sense"); v != 0x80 {
		t.Errorf("sense = %#x, want ILLEGAL_REQUEST (rejected)", v)
	}
}

func TestCVE5158EvadesParameterCheck(t *testing.T) {
	// The copy length comes from the guest header — a temporary — so the
	// parameter check has nothing to bound (paper §VII-B2 analogue).
	m, att, g := setup(t, scsi.Options{})
	spec := learn(t, att)
	sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyParameter))
	if err := cve5158(g, m); err != nil {
		t.Fatalf("parameter check should not flag CVE-2015-5158: %v", err)
	}
	_ = att
}

func TestCVE5158CaughtByConditionalCheck(t *testing.T) {
	m, att, g := setup(t, scsi.Options{})
	spec := learn(t, att)
	sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyConditionalJump))
	err := cve5158(g, m)
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyConditionalJump {
		t.Fatalf("want conditional-jump anomaly, got %v", err)
	}
	if !m.Halted() {
		t.Error("machine should halt")
	}
	_ = att
}

func TestRareESPCommandsFlagged(t *testing.T) {
	_, att, g := setup(t, scsi.Options{})
	spec := learn(t, att)
	sedspec.Protect(att, spec)
	err := g.SetATN()
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyConditionalJump {
		t.Fatalf("want conditional-jump anomaly for rare ESP command, got %v", err)
	}
}
