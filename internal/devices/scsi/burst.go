package scsi

import "sedspec/internal/interp"

// SelectBurst delivers a burst of SELECT-with-ATN commands — for each
// CDB the FIFO flush, the identify byte, the CDB bytes, the ESP command,
// and the interrupt acknowledge — through machine.DispatchBatch, so a
// batch-capable enforcement interposer checks the whole CDB burst in
// one call. The request stream is exactly the one len(cdbs) sequential
// Select calls would issue; only its delivery is batched. Returns one
// interrupt-register value per CDB.
func (g *Guest) SelectBurst(cdbs ...[]byte) ([]byte, error) {
	var reqs []*interp.Request
	var intrAt []int
	for _, cdb := range cdbs {
		reqs = append(reqs, interp.NewWrite(interp.SpacePIO, PortCmd, []byte{ESPFlush}))
		reqs = append(reqs, interp.NewWrite(interp.SpacePIO, PortFIFO, []byte{0x80}))
		for _, v := range cdb {
			reqs = append(reqs, interp.NewWrite(interp.SpacePIO, PortFIFO, []byte{v}))
		}
		reqs = append(reqs, interp.NewWrite(interp.SpacePIO, PortCmd, []byte{ESPSelATN}))
		intrAt = append(intrAt, len(reqs))
		reqs = append(reqs, interp.NewRead(interp.SpacePIO, PortIntr))
	}
	results, err := g.p.Attached().DispatchBatch(reqs)
	if err != nil {
		return nil, err
	}
	intrs := make([]byte, 0, len(cdbs))
	for _, i := range intrAt {
		if res := results[i]; res != nil && len(res.Output) > 0 {
			intrs = append(intrs, res.Output[0])
		} else {
			intrs = append(intrs, 0)
		}
	}
	return intrs, nil
}
