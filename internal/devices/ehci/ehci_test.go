package ehci_test

import (
	"encoding/binary"
	"errors"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/ehci"
	"sedspec/internal/machine"
	"sedspec/internal/workload"
)

func setup(t *testing.T, opts ehci.Options) (*sedspec.Machine, *sedspec.Attached, *ehci.Guest) {
	t.Helper()
	m := sedspec.NewMachine(machine.WithMemory(1 << 20))
	dev := ehci.New(opts)
	att := m.Attach(dev, machine.WithMMIO(0, ehci.RegionSize))
	return m, att, ehci.NewGuest(sedspec.NewDriver(att))
}

func train(d *sedspec.Driver) error {
	return workload.TrainEHCI(d, workload.TrainConfig{Light: true})
}

func TestEnumeration(t *testing.T) {
	_, att, g := setup(t, ehci.Options{})
	if err := g.NoDataRequest(ehci.ReqSetAddress, 7); err != nil {
		t.Fatal(err)
	}
	if v, _ := att.Dev().State().IntByName("dev_addr"); v != 7 {
		t.Errorf("dev_addr = %d, want 7", v)
	}
	if err := g.NoDataRequest(ehci.ReqSetConfig, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := att.Dev().State().IntByName("config"); v != 1 {
		t.Errorf("config = %d, want 1", v)
	}
}

func TestGetDescriptorReturnsData(t *testing.T) {
	m, _, g := setup(t, ehci.Options{})
	if err := g.ControlIn(ehci.ReqGetDescriptor, 0x0100, 18); err != nil {
		t.Fatal(err)
	}
	// The IN stage DMA'd the descriptor to guest memory.
	buf := make([]byte, 4)
	if err := m.Mem.Read(0x8100, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 18 || buf[1] != 1 {
		t.Errorf("descriptor head = %v, want [18 1 ...]", buf)
	}
	if !m.IRQ.Level(0) {
		t.Error("IOC should raise the interrupt")
	}
}

func TestControlOutFillsDataBuf(t *testing.T) {
	_, att, g := setup(t, ehci.Options{})
	data := []byte{9, 8, 7, 6, 5}
	if err := g.ControlOut(ehci.ReqClearFeature, 0, data); err != nil {
		t.Fatal(err)
	}
	got := att.Dev().State().Buf(att.Dev().Program().FieldIndex("data_buf"))[:5]
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("data_buf[%d] = %d, want %d", i, got[i], data[i])
		}
	}
	if v, _ := att.Dev().State().IntByName("setup_index"); v != 5 {
		t.Errorf("setup_index = %d, want 5", v)
	}
}

// cve14364 runs the two-instance exploit: a SETUP with oversized wLength,
// OUT stages that walk setup_index past data_buf onto setup_index itself
// (rewriting it to a negative value), and a final OUT that lands before
// the buffer on the device's callback pointer.
func cve14364(t *testing.T, g *ehci.Guest, att *sedspec.Attached, m *sedspec.Machine) error {
	t.Helper()
	prog := att.Dev().Program()
	gadget := uint64(prog.HandlerIndex("host_gadget"))

	// SETUP with wLength far beyond the 4096-byte buffer.
	if err := m.Mem.Write(0x8000, []byte{0x00, ehci.ReqClearFeature, 0, 0, 0, 0, 0xFF, 0xFF}); err != nil {
		return err
	}
	// First OUT fills exactly 4096 bytes; the second OUT's 8 bytes land
	// on setup_index (4 bytes) and beyond, rewriting it to -28; after the
	// post-copy increment (+8) it reads -20 — the offset of irq_cb
	// relative to data_buf.
	overwrite := make([]byte, 8)
	binary.LittleEndian.PutUint32(overwrite, 0xFFFF_FFE4) // -28
	if err := m.Mem.Write(0x9000, overwrite); err != nil {
		return err
	}
	// Third OUT writes the gadget pointer through the negative index.
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint64(payload, gadget)
	if err := m.Mem.Write(0xA000, payload); err != nil {
		return err
	}
	return g.Run([]ehci.TD{
		{Pid: ehci.PidSetup, Len: 8, Buffer: 0x8000},
		{Pid: ehci.PidOut, Len: 4096, Buffer: 0x8100},
		{Pid: ehci.PidOut, Len: 8, Buffer: 0x9000},
		{Pid: ehci.PidOut, Len: 8, Buffer: 0xA000},
		// Completion with IOC: the corrupted callback fires.
		{Pid: ehci.PidIn, Len: 4, Buffer: 0x8200, IOC: true},
	})
}

func TestCVE14364UnprotectedHijack(t *testing.T) {
	m, att, g := setup(t, ehci.Options{})
	if err := cve14364(t, g, att, m); err != nil {
		t.Fatalf("unprotected exploit errored: %v", err)
	}
	if v, _ := att.Dev().State().IntByName("frindex"); v != 0xBAD {
		t.Errorf("frindex = %#x, want 0xBAD (gadget executed)", v)
	}
}

func TestCVE14364Fix(t *testing.T) {
	m, att, g := setup(t, ehci.Options{Fix14364: true})
	if err := cve14364(t, g, att, m); err != nil {
		t.Fatalf("patched device errored: %v", err)
	}
	if v, _ := att.Dev().State().IntByName("frindex"); v == 0xBAD {
		t.Error("gadget executed despite fix")
	}
	if v, _ := att.Dev().State().IntByName("usbsts"); v&ehci.StsErr == 0 {
		t.Error("oversized wLength should stall")
	}
}

func learn(t *testing.T, att *sedspec.Attached) *sedspec.Spec {
	t.Helper()
	spec, err := sedspec.Learn(att, train)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	return spec
}

func TestBenignPassesUnderProtection(t *testing.T) {
	m, att, _ := setup(t, ehci.Options{})
	spec := learn(t, att)
	chk := sedspec.Protect(att, spec)
	if err := train(sedspec.NewDriver(att)); err != nil {
		t.Fatalf("benign traffic blocked: %v", err)
	}
	if m.Halted() {
		t.Fatal("halted on benign traffic")
	}
	st := chk.Stats()
	if st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies != 0 {
		t.Fatalf("anomalies on benign traffic: %+v", st)
	}
}

func TestCVE14364BlockedByParameterCheck(t *testing.T) {
	m, att, g := setup(t, ehci.Options{})
	spec := learn(t, att)
	sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyParameter))
	err := cve14364(t, g, att, m)
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyParameter {
		t.Fatalf("want parameter anomaly, got %v", err)
	}
	if !m.Halted() {
		t.Error("machine should halt")
	}
	if v, _ := att.Dev().State().IntByName("frindex"); v == 0xBAD {
		t.Error("gadget executed despite protection")
	}
}

func TestCVE14364CaughtByIndirectCheck(t *testing.T) {
	// With only the indirect check, the overflow proceeds on the shadow;
	// the corrupted callback pointer is caught at invocation.
	m, att, g := setup(t, ehci.Options{})
	spec := learn(t, att)
	sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyIndirectJump))
	err := cve14364(t, g, att, m)
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyIndirectJump {
		t.Fatalf("want indirect-jump anomaly, got %v", err)
	}
	if !m.Halted() {
		t.Error("machine should halt")
	}
}

// cve1568 reuses the controller's dangling cached qTD after an unlink: the
// guest repurposes the qTD memory, and a schedule resume makes the device
// operate on attacker data at a stale pointer.
func cve1568(g *ehci.Guest, m *sedspec.Machine) error {
	// Benign-looking transfer that leaves the cache populated.
	if err := g.ControlIn(ehci.ReqGetStatus, 0, 2); err != nil {
		return err
	}
	// Unlink: the guest declares the chain memory free.
	if err := g.Doorbell(); err != nil {
		return err
	}
	// Repurpose the cached qTD memory: an IN transfer targeting an
	// address the guest never handed to the controller.
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint32(buf[ehci.TDToken:], ehci.PidIn|64<<16)
	binary.LittleEndian.PutUint32(buf[ehci.TDBuffer:], 0xF000) // wild target
	if err := m.Mem.Write(0x0810, buf); err != nil {           // the cached (second) qTD
		return err
	}
	// Resume: the device follows the stale pointer.
	return g.Resume()
}

func TestCVE1568UnprotectedUAF(t *testing.T) {
	m, _, g := setup(t, ehci.Options{})
	// Canary at the wild target address.
	if err := m.Mem.Write(0xF000, []byte{0xAA, 0xAA}); err != nil {
		t.Fatal(err)
	}
	if err := cve1568(g, m); err != nil {
		t.Fatalf("exploit errored: %v", err)
	}
	got := make([]byte, 2)
	if err := m.Mem.Read(0xF000, got); err != nil {
		t.Fatal(err)
	}
	if got[0] == 0xAA {
		t.Error("stale-qTD transfer should have written through the wild pointer")
	}
}

func TestCVE1568Fix(t *testing.T) {
	m, _, g := setup(t, ehci.Options{Fix1568: true})
	if err := m.Mem.Write(0xF000, []byte{0xAA, 0xAA}); err != nil {
		t.Fatal(err)
	}
	if err := cve1568(g, m); err != nil {
		t.Fatalf("patched device errored: %v", err)
	}
	got := make([]byte, 2)
	if err := m.Mem.Read(0xF000, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAA {
		t.Error("fix should have dropped the cached qTD")
	}
}

func TestCVE1568MissedBySEDSpec(t *testing.T) {
	// The paper's reported false negative: the stale-pointer flow follows
	// exactly the control flow of benign traffic, so no strategy fires
	// and the exploit succeeds under full protection.
	m, att, g := setup(t, ehci.Options{})
	spec := learn(t, att)
	chk := sedspec.Protect(att, spec)

	if err := m.Mem.Write(0xF000, []byte{0xAA, 0xAA}); err != nil {
		t.Fatal(err)
	}
	if err := cve1568(g, m); err != nil {
		t.Fatalf("SEDSpec unexpectedly blocked CVE-2016-1568: %v", err)
	}
	if m.Halted() {
		t.Fatal("machine should not halt (known miss)")
	}
	st := chk.Stats()
	if st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies != 0 {
		t.Fatalf("no strategy should fire: %+v", st)
	}
	got := make([]byte, 2)
	if err := m.Mem.Read(0xF000, got); err != nil {
		t.Fatal(err)
	}
	if got[0] == 0xAA {
		t.Error("exploit should have succeeded (the documented miss)")
	}
}

func TestRareRequestsFlagged(t *testing.T) {
	_, att, g := setup(t, ehci.Options{})
	spec := learn(t, att)
	sedspec.Protect(att, spec)
	err := g.NoDataRequest(ehci.ReqSynchFrame, 0)
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyConditionalJump {
		t.Fatalf("want conditional-jump anomaly for SYNCH_FRAME, got %v", err)
	}
}
