// Package ehci models a USB EHCI host controller with an attached USB
// device, as emulated by QEMU (hw/usb/hcd-ehci.c with the usb core's
// USBDevice behind it): the operational register file, asynchronous
// schedule processing over guest qTDs, and the control-transfer state
// machine (SETUP / data / status stages).
//
// Two QEMU CVEs are seeded:
//
//   - CVE-2020-14364: the SETUP stage latches wLength into setup_len with
//     no bound against the 4096-byte data_buf, so OUT data stages indexed
//     by setup_index write past the buffer (first out-of-bounds instance,
//     reaching setup_index itself); overwriting setup_index with a
//     negative value makes the next write land *before* the buffer, on the
//     device's interrupt callback pointer (second instance). Fix14364
//     applies the upstream bound.
//   - CVE-2016-1568: the async-schedule doorbell is supposed to clear the
//     controller's cached qTD pointer when the guest unlinks the chain,
//     but the unpatched code misses that re-initialization; a later
//     schedule resume dereferences the stale pointer into memory the guest
//     has repurposed — a use-after-free. Every branch of that flow is also
//     taken by benign traffic, which is exactly why SEDSpec misses it (the
//     paper's reported false negative). Fix1568 adds the clear.
package ehci

import (
	"sedspec/internal/devices/devutil"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// MMIO register offsets.
const (
	RegUSBCmd    = 0x00
	RegUSBSts    = 0x04
	RegUSBIntr   = 0x08
	RegFrIndex   = 0x0C
	RegAsyncList = 0x18
	RegConfig    = 0x40
	RegPortSC    = 0x44
	// RegionSize is the MMIO window size.
	RegionSize = 0x60
)

// USBCMD bits.
const (
	CmdRun      = 0x0001
	CmdDoorbell = 0x0040
)

// USBSTS bits.
const (
	StsInt      = 0x0001
	StsErr      = 0x0002
	StsDoorbell = 0x0020
)

// qTD layout in guest memory (16 bytes).
const (
	TDToken  = 0  // pid | ioc<<8 | length<<16
	TDBuffer = 4  // data buffer guest address
	TDNext   = 8  // next qTD address (0 terminates)
	TDStatus = 12 // status writeback
)

// Token PIDs.
const (
	PidOut   = 0
	PidIn    = 1
	PidSetup = 2
)

// TokenIOC requests an interrupt on completion.
const TokenIOC = 0x100

// Standard USB requests (the device's command space).
const (
	ReqGetStatus     = 0
	ReqClearFeature  = 1
	ReqSetFeature    = 3
	ReqSetAddress    = 5
	ReqGetDescriptor = 6
	ReqSetDescriptor = 7 // rare
	ReqGetConfig     = 8
	ReqSetConfig     = 9
	ReqGetInterface  = 10
	ReqSetInterface  = 11
	ReqSynchFrame    = 12 // rare
)

// DataBufSize is the USBDevice control-transfer buffer capacity.
const DataBufSize = 4096

// tdBudget bounds qTDs processed per doorbell, like the real controller's
// microframe budget.
const tdBudget = 16

// Options configure the seeded vulnerabilities.
type Options struct {
	// Fix14364 bounds setup_len at the data buffer size.
	Fix14364 bool
	// Fix1568 clears the cached qTD pointer on unlink.
	Fix1568 bool
}

// Device is the emulated host controller plus USB device.
type Device struct {
	*devutil.Base
}

// New builds the controller.
func New(opts Options) *Device {
	prog := build(opts)
	return &Device{Base: devutil.NewBase(prog, func(st *interp.State, p *ir.Program) {
		devutil.SetFunc(st, p, "irq_cb", "ehci_raise_irq")
	})}
}

func build(opts Options) *ir.Program {
	b := ir.NewBuilder("ehci")

	// USBDevice-side control structure. The callback pointer sits in
	// front of setup_buf so a negative setup_index reaches it, and
	// setup_index sits right after data_buf so a positive overflow
	// reaches it — the two out-of-bounds instances of CVE-2020-14364.
	irqCb := b.Func("irq_cb")
	setupBuf := b.Buf("setup_buf", 8)
	setupLen := b.Int("setup_len", ir.W32, ir.Signed())
	dataBuf := b.Buf("data_buf", DataBufSize)
	setupIndex := b.Int("setup_index", ir.W32, ir.Signed())

	usbcmd := b.Int("usbcmd", ir.W32, ir.HWRegister())
	usbsts := b.Int("usbsts", ir.W32, ir.HWRegister())
	usbintr := b.Int("usbintr", ir.W32, ir.HWRegister())
	frindex := b.Int("frindex", ir.W32, ir.HWRegister())
	asyncList := b.Int("asynclistaddr", ir.W32, ir.HWRegister())
	portsc := b.Int("portsc", ir.W32, ir.HWRegister())
	devAddr := b.Int("dev_addr", ir.W8)
	config := b.Int("config", ir.W8)
	// asyncTD caches the qTD being processed — the CVE-2016-1568 stale
	// pointer.
	asyncTD := b.Int("async_td", ir.W32)
	tdCount := b.Int("td_count", ir.W8)

	buildMMIO(b, opts, usbcmd, usbsts, usbintr, frindex, asyncList, portsc, asyncTD)
	buildSchedule(b, opts, irqCb, setupBuf, setupLen, dataBuf, setupIndex,
		usbsts, asyncList, asyncTD, tdCount, devAddr, config)

	irq := b.Handler("ehci_raise_irq")
	e := irq.Block("entry")
	e.IRQRaise("qemu_set_irq(s->irq, 1)")
	e.Return("return")

	g := b.Handler("host_gadget")
	gb := g.Block("entry")
	pw := gb.Const(0xBAD, "0xbad")
	gb.Store(frindex, pw, "/* attacker-controlled execution */")
	gb.Return("return")

	b.Dispatch("ehci_mmio")
	return devutil.MustBuild(b)
}

func buildMMIO(b *ir.Builder, opts Options, usbcmd, usbsts, usbintr, frindex, asyncList, portsc, asyncTD ir.FieldID) {
	h := b.Handler("ehci_mmio")
	e := h.Block("entry").Entry()
	isw := e.IOIsWrite("dir = req->write")
	one := e.Const(1, "1")
	e.Branch(isw, ir.RelEQ, one, ir.W8, false, "if (req->write)", "wr", "rd")

	w := h.Block("wr")
	waddr := w.IOAddr("addr = req->addr")
	w.Switch(waddr, "switch (addr)", "out",
		ir.Case(RegUSBCmd, "w_cmd"),
		ir.Case(RegUSBSts, "w_sts"),
		ir.Case(RegUSBIntr, "w_intr"),
		ir.Case(RegAsyncList, "w_async"),
		ir.Case(RegPortSC, "w_portsc"),
	)

	wc := h.Block("w_cmd")
	v := wc.IOIn(ir.W32, "v = ldl(val)")
	wc.Store(usbcmd, v, "s->usbcmd = v")
	db := wc.Const(CmdDoorbell, "USBCMD_DOORBELL")
	dbb := wc.Arith(ir.ALUAnd, v, db, ir.W32, false, "v & DOORBELL")
	z := wc.Const(0, "0")
	wc.Branch(dbb, ir.RelNE, z, ir.W32, false, "if (v & DOORBELL)", "w_doorbell", "w_run")

	dbell := h.Block("w_doorbell")
	cur := dbell.Load(usbsts, "s->usbsts")
	dbit := dbell.Const(StsDoorbell, "STS_DOORBELL")
	c2 := dbell.Arith(ir.ALUOr, cur, dbit, ir.W32, false, "sts | DOORBELL")
	dbell.Store(usbsts, c2, "s->usbsts |= DOORBELL")
	if opts.Fix1568 {
		zz := dbell.Const(0, "0")
		dbell.Store(asyncTD, zz, "s->async_td = 0 /* CVE-2016-1568 fix: drop cached qTD */")
	}
	// The unpatched code forgets to invalidate the cached qTD here.
	dbell.Jump("w_run", "fallthrough")

	run := h.Block("w_run")
	rb := run.Const(CmdRun, "USBCMD_RUN")
	rbb := run.Arith(ir.ALUAnd, v, rb, ir.W32, false, "v & RUN")
	z2 := run.Const(0, "0")
	run.Branch(rbb, ir.RelNE, z2, ir.W32, false, "if (v & RUN)", "w_sched", "out")
	sch := h.Block("w_sched")
	sch.Call("ehci_advance_async", "ehci_advance_async_state(s)")
	sch.Jump("out", "goto out")

	ws := h.Block("w_sts")
	sv := ws.IOIn(ir.W32, "v = ldl(val)")
	curs := ws.Load(usbsts, "c = s->usbsts")
	inv := ws.Const(0xFFFF_FFFF, "~0")
	nv := ws.Arith(ir.ALUXor, sv, inv, ir.W32, false, "~v")
	c3 := ws.Arith(ir.ALUAnd, curs, nv, ir.W32, false, "c & ~v")
	ws.Store(usbsts, c3, "s->usbsts &= ~v /* write-1-to-clear */")
	ws.Jump("out", "goto out")

	store32 := func(label string, f ir.FieldID, stmt string) {
		blk := h.Block(label)
		vv := blk.IOIn(ir.W32, "v = ldl(val)")
		blk.Store(f, vv, stmt)
		blk.Jump("out", "goto out")
	}
	store32("w_intr", usbintr, "s->usbintr = v")
	store32("w_async", asyncList, "s->asynclistaddr = v")
	store32("w_portsc", portsc, "s->portsc = v")

	r := h.Block("rd")
	raddr := r.IOAddr("addr = req->addr")
	r.Switch(raddr, "switch (addr)", "r_zero",
		ir.Case(RegUSBCmd, "r_cmd"),
		ir.Case(RegUSBSts, "r_sts"),
		ir.Case(RegFrIndex, "r_fr"),
		ir.Case(RegAsyncList, "r_async"),
		ir.Case(RegPortSC, "r_portsc"),
	)
	emit := func(label string, f ir.FieldID, stmt string) {
		blk := h.Block(label)
		vv := blk.Load(f, stmt)
		blk.IOOut(vv, ir.W32, "return v")
		blk.Jump("out", "goto out")
	}
	emit("r_cmd", usbcmd, "v = s->usbcmd")
	emit("r_sts", usbsts, "v = s->usbsts")
	emit("r_fr", frindex, "v = s->frindex")
	emit("r_async", asyncList, "v = s->asynclistaddr")
	emit("r_portsc", portsc, "v = s->portsc")
	rz := h.Block("r_zero")
	zv := rz.Const(0, "0")
	rz.IOOut(zv, ir.W32, "return 0")
	rz.Jump("out", "goto out")

	h.Block("out").Exit().Halt("return")
}
