package ehci

import (
	"encoding/binary"

	"sedspec/internal/interp"
)

// RunBurst lays out several qTD chains in disjoint guest-memory areas
// and delivers the whole schedule sweep — one AsyncList write plus one
// USBCmd run per chain — through machine.DispatchBatch, so a
// batch-capable enforcement interposer checks the entire sweep in one
// call. The request stream is exactly the one len(chains) sequential
// Run calls would issue; only its delivery is batched.
func (g *Guest) RunBurst(chains ...[]TD) ([]*interp.Result, error) {
	mem := g.p.Machine().Mem
	reqs := make([]*interp.Request, 0, 2*len(chains))
	area := uint64(guestTDBase)
	for _, tds := range chains {
		head := area
		for i, td := range tds {
			addr := area + uint64(i)*16
			token := td.Pid | td.Len<<16
			if td.IOC {
				token |= TokenIOC
			}
			next := uint32(0)
			if i < len(tds)-1 {
				next = uint32(addr + 16)
			}
			buf := make([]byte, 16)
			binary.LittleEndian.PutUint32(buf[TDToken:], token)
			binary.LittleEndian.PutUint32(buf[TDBuffer:], td.Buffer)
			binary.LittleEndian.PutUint32(buf[TDNext:], next)
			if err := mem.Write(addr, buf); err != nil {
				return nil, err
			}
		}
		area += uint64(len(tds)) * 16
		reqs = append(reqs,
			mmio32(g.Base+RegAsyncList, uint32(head)),
			mmio32(g.Base+RegUSBCmd, CmdRun))
	}
	return g.p.Attached().DispatchBatch(reqs)
}

// mmio32 builds one little-endian 32-bit MMIO write request.
func mmio32(addr uint64, v uint32) *interp.Request {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return interp.NewWrite(interp.SpaceMMIO, addr, b)
}
