package ehci

import (
	"encoding/binary"
	"fmt"

	"sedspec/internal/devices/devutil"
)

// Guest memory layout used by the driver helper.
const (
	guestTDBase  = 0x0800 // qTD chain area
	guestBufBase = 0x8000 // data buffers
)

// Guest drives the controller like an EHCI host driver: build qTD chains
// in guest memory, start the async schedule, and service interrupts.
type Guest struct {
	p devutil.Port
	// Base is the MMIO base the device was attached at.
	Base uint64
}

// NewGuest wraps a port driver.
func NewGuest(p devutil.Port) *Guest { return &Guest{p: p} }

// Write32 writes an operational register.
func (g *Guest) Write32(off uint64, v uint32) error {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	_, err := g.p.MMIOWrite(g.Base+off, b)
	return err
}

// Read32 reads an operational register.
func (g *Guest) Read32(off uint64) (uint32, error) {
	out, _, err := g.p.MMIORead(g.Base + off)
	if err != nil {
		return 0, err
	}
	if len(out) < 4 {
		return 0, fmt.Errorf("ehci: short read at %#x", off)
	}
	return binary.LittleEndian.Uint32(out), nil
}

// TD describes one qTD to place in guest memory.
type TD struct {
	Pid    uint32
	IOC    bool
	Len    uint32
	Buffer uint32
}

// WriteChain lays out a qTD chain at guestTDBase and returns its head.
func (g *Guest) WriteChain(tds []TD) (uint32, error) {
	mem := g.p.Machine().Mem
	for i, td := range tds {
		addr := uint64(guestTDBase + i*16)
		token := td.Pid | td.Len<<16
		if td.IOC {
			token |= TokenIOC
		}
		next := uint32(0)
		if i < len(tds)-1 {
			next = uint32(guestTDBase + (i+1)*16)
		}
		buf := make([]byte, 16)
		binary.LittleEndian.PutUint32(buf[TDToken:], token)
		binary.LittleEndian.PutUint32(buf[TDBuffer:], td.Buffer)
		binary.LittleEndian.PutUint32(buf[TDNext:], next)
		if err := mem.Write(addr, buf); err != nil {
			return 0, err
		}
	}
	return guestTDBase, nil
}

// Run submits a chain and starts the async schedule.
func (g *Guest) Run(tds []TD) error {
	head, err := g.WriteChain(tds)
	if err != nil {
		return err
	}
	if err := g.Write32(RegAsyncList, head); err != nil {
		return err
	}
	return g.Write32(RegUSBCmd, CmdRun)
}

// Resume re-runs the schedule from the controller's cached qTD.
func (g *Guest) Resume() error {
	if err := g.Write32(RegAsyncList, 0); err != nil {
		return err
	}
	return g.Write32(RegUSBCmd, CmdRun)
}

// Doorbell rings the async unlink doorbell (without running).
func (g *Guest) Doorbell() error {
	return g.Write32(RegUSBCmd, CmdDoorbell)
}

// AckStatus clears pending status bits.
func (g *Guest) AckStatus() error {
	s, err := g.Read32(RegUSBSts)
	if err != nil {
		return err
	}
	return g.Write32(RegUSBSts, s)
}

// setupPacket builds the 8-byte SETUP payload.
func setupPacket(reqType, request byte, value, index, length uint16) []byte {
	b := make([]byte, 8)
	b[0] = reqType
	b[1] = request
	binary.LittleEndian.PutUint16(b[2:], value)
	binary.LittleEndian.PutUint16(b[4:], index)
	binary.LittleEndian.PutUint16(b[6:], length)
	return b
}

// ControlIn performs a SETUP + IN + status transfer (for example
// GET_DESCRIPTOR).
func (g *Guest) ControlIn(request byte, value, wLength uint16) error {
	mem := g.p.Machine().Mem
	if err := mem.Write(guestBufBase, setupPacket(0x80, request, value, 0, wLength)); err != nil {
		return err
	}
	err := g.Run([]TD{
		{Pid: PidSetup, Len: 8, Buffer: guestBufBase},
		{Pid: PidIn, Len: uint32(wLength), Buffer: guestBufBase + 0x100, IOC: true},
	})
	if err != nil {
		return err
	}
	return g.AckStatus()
}

// ControlOut performs a SETUP + OUT transfer carrying data to the device.
func (g *Guest) ControlOut(request byte, value uint16, data []byte) error {
	mem := g.p.Machine().Mem
	if err := mem.Write(guestBufBase, setupPacket(0x00, request, value, 0, uint16(len(data)))); err != nil {
		return err
	}
	if err := mem.Write(guestBufBase+0x100, data); err != nil {
		return err
	}
	err := g.Run([]TD{
		{Pid: PidSetup, Len: 8, Buffer: guestBufBase},
		{Pid: PidOut, Len: uint32(len(data)), Buffer: guestBufBase + 0x100, IOC: true},
	})
	if err != nil {
		return err
	}
	return g.AckStatus()
}

// NoDataRequest performs a SETUP-only transfer (SET_ADDRESS and friends).
func (g *Guest) NoDataRequest(request byte, value uint16) error {
	mem := g.p.Machine().Mem
	if err := mem.Write(guestBufBase, setupPacket(0x00, request, value, 0, 0)); err != nil {
		return err
	}
	if err := g.Run([]TD{{Pid: PidSetup, Len: 8, Buffer: guestBufBase, IOC: true}}); err != nil {
		return err
	}
	return g.AckStatus()
}
