package ehci

import "sedspec/internal/ir"

// buildSchedule emits asynchronous-schedule processing: walk the guest's
// qTD chain (or resume the cached qTD when the list head is zero),
// executing SETUP / OUT / IN stages against the USB device's
// control-transfer state.
func buildSchedule(b *ir.Builder, opts Options, irqCb, setupBuf, setupLen, dataBuf, setupIndex,
	usbsts, asyncList, asyncTD, tdCount ir.FieldID, devAddr, config ir.FieldID) {

	h := b.Handler("ehci_advance_async")
	e := h.Block("entry")
	z := e.Const(0, "0")
	e.Store(tdCount, z, "budget = 0")
	head := e.Load(asyncList, "td = s->asynclistaddr")
	e.Branch(head, ir.RelEQ, z, ir.W32, false, "if (!s->asynclistaddr)", "resume", "fresh")

	// Resume path: reuse the cached qTD. With CVE-2016-1568 unpatched, a
	// doorbell unlink leaves the cache dangling and this path follows it
	// into repurposed guest memory. Benign traffic takes the identical
	// path with a valid cache, so the specification cannot tell them
	// apart.
	rs := h.Block("resume")
	cached := rs.Load(asyncTD, "td = s->async_td /* cached qTD */")
	zr := rs.Const(0, "0")
	rs.Branch(cached, ir.RelEQ, zr, ir.W32, false, "if (!s->async_td)", "idle", "load_cached")
	h.Block("idle").CmdEnd().Return("return")
	lc := h.Block("load_cached")
	lc.Store(asyncTD, cached, "keep cache")
	lc.Jump("td_loop", "goto process")

	fr := h.Block("fresh")
	fr.Store(asyncTD, head, "s->async_td = s->asynclistaddr")
	fr.Jump("td_loop", "goto process")

	// --- qTD processing loop ---
	lp := h.Block("td_loop")
	td := lp.Load(asyncTD, "td = s->async_td")
	token := lp.DMARead(td, ir.W32, "token = ldl(td)")
	bo := lp.Const(TDBuffer, "4")
	ba := lp.Arith(ir.ALUAdd, td, bo, ir.W32, false, "td + 4")
	buf := lp.DMARead(ba, ir.W32, "bufp = ldl(td + 4)")
	pm := lp.Const(0xFF, "0xff")
	pid := lp.Arith(ir.ALUAnd, token, pm, ir.W32, false, "pid = token & 0xff")
	lp.Switch(pid, "switch (pid)", "td_done",
		ir.Case(PidSetup, "st_setup"),
		ir.Case(PidOut, "st_out"),
		ir.Case(PidIn, "st_in"),
	)

	// SETUP stage: latch the 8-byte setup packet and dispatch bRequest.
	su := h.Block("st_setup")
	zi := su.Const(0, "0")
	eight := su.Const(8, "8")
	su.DMAToBuf(setupBuf, zi, buf, eight, false, "usb_packet_copy(s->setup_buf, 8)")
	six := su.Const(6, "6")
	wl0 := su.BufLoad(setupBuf, six, ir.W32, false, "lo = s->setup_buf[6]")
	seven := su.Const(7, "7")
	wl1 := su.BufLoad(setupBuf, seven, ir.W32, false, "hi = s->setup_buf[7]")
	sh8 := su.Const(8, "8")
	hi := su.Arith(ir.ALUShl, wl1, sh8, ir.W32, false, "hi << 8")
	wlen := su.Arith(ir.ALUOr, hi, wl0, ir.W32, false, "wLength = lo | hi << 8")
	if opts.Fix14364 {
		lim := su.Const(DataBufSize, "sizeof(s->data_buf)")
		su.Branch(wlen, ir.RelGT, lim, ir.W32, true,
			"if (s->setup_len > sizeof(s->data_buf)) /* CVE-2020-14364 fix */", "st_stall", "st_latch")
		stl := h.Block("st_stall")
		cur := stl.Load(usbsts, "sts")
		eb := stl.Const(StsErr, "STS_ERR")
		c2 := stl.Arith(ir.ALUOr, cur, eb, ir.W32, false, "sts | ERR")
		stl.Store(usbsts, c2, "s->usbsts |= ERR /* stall */")
		stl.Return("return")
		la := h.Block("st_latch")
		la.Store(setupLen, wlen, "s->setup_len = wLength")
		zz := la.Const(0, "0")
		la.Store(setupIndex, zz, "s->setup_index = 0")
		la.Jump("st_dispatch", "goto dispatch")
	} else {
		su.Store(setupLen, wlen, "s->setup_len = wLength /* unbounded: CVE-2020-14364 */")
		zz := su.Const(0, "0")
		su.Store(setupIndex, zz, "s->setup_index = 0")
		su.Jump("st_dispatch", "goto dispatch")
	}

	// bRequest dispatch: the USB device's command space.
	dp := h.Block("st_dispatch").CmdDecision()
	onei := dp.Const(1, "1")
	breq := dp.BufLoad(setupBuf, onei, ir.W8, false, "bRequest = s->setup_buf[1]")
	dp.Switch(breq, "switch (bRequest)", "rq_stall",
		ir.Case(ReqGetStatus, "rq_getstatus"),
		ir.Case(ReqClearFeature, "rq_clearfeat"),
		ir.Case(ReqSetFeature, "rq_setfeat"),
		ir.Case(ReqSetAddress, "rq_setaddr"),
		ir.Case(ReqGetDescriptor, "rq_getdesc"),
		ir.Case(ReqGetConfig, "rq_getconf"),
		ir.Case(ReqSetConfig, "rq_setconf"),
		ir.Case(ReqGetInterface, "rq_getif"),
		ir.Case(ReqSetInterface, "rq_setif"),
		ir.Case(ReqSetDescriptor, "rq_setdesc"),
		ir.Case(ReqSynchFrame, "rq_synch"),
	)

	gs := h.Block("rq_getstatus")
	o := gs.Const(1, "1")
	zgi := gs.Const(0, "0")
	gs.BufStore(dataBuf, zgi, o, ir.W32, false, "s->data_buf[0] = 1 /* self powered */")
	gs.Jump("td_done", "goto done")

	cf := h.Block("rq_clearfeat")
	cf.Jump("td_done", "goto done")
	sf := h.Block("rq_setfeat")
	sf.Jump("td_done", "goto done")

	sa := h.Block("rq_setaddr")
	two := sa.Const(2, "2")
	av := sa.BufLoad(setupBuf, two, ir.W8, false, "addr = s->setup_buf[2]")
	sa.Store(devAddr, av, "s->dev_addr = addr")
	sa.Jump("td_done", "goto done")

	gd := h.Block("rq_getdesc")
	for i, dbyte := range []uint64{18, 1, 0, 2, 0, 0, 0, 64, 0x86, 0x80} {
		ii := gd.Const(uint64(i), "i")
		dv := gd.Const(dbyte, "desc[i]")
		gd.BufStore(dataBuf, ii, dv, ir.W32, false, "s->data_buf[i] = desc[i]")
	}
	gd.Jump("td_done", "goto done")

	gc := h.Block("rq_getconf")
	cv := gc.Load(config, "c = s->config")
	zci := gc.Const(0, "0")
	gc.BufStore(dataBuf, zci, cv, ir.W32, false, "s->data_buf[0] = s->config")
	gc.Jump("td_done", "goto done")

	sc := h.Block("rq_setconf")
	two2 := sc.Const(2, "2")
	cv2 := sc.BufLoad(setupBuf, two2, ir.W8, false, "c = s->setup_buf[2]")
	sc.Store(config, cv2, "s->config = c")
	sc.Jump("td_done", "goto done")

	gi := h.Block("rq_getif")
	gi.Jump("td_done", "goto done")
	si := h.Block("rq_setif")
	si.Jump("td_done", "goto done")
	sd := h.Block("rq_setdesc") // rare
	sd.Jump("td_done", "goto done")
	sy := h.Block("rq_synch") // rare
	sy.Jump("td_done", "goto done")

	rqs := h.Block("rq_stall")
	cur2 := rqs.Load(usbsts, "sts")
	eb2 := rqs.Const(StsErr, "STS_ERR")
	c4 := rqs.Arith(ir.ALUOr, cur2, eb2, ir.W32, false, "sts | ERR")
	rqs.Store(usbsts, c4, "s->usbsts |= ERR")
	rqs.Jump("td_done", "goto done")

	// OUT data stage: host-to-device, indexed by setup_index (signed) —
	// the CVE-2020-14364 out-of-bounds site.
	ou := h.Block("st_out")
	sh16 := ou.Const(16, "16")
	n := ou.Arith(ir.ALUShr, token, sh16, ir.W32, false, "len = token >> 16")
	idx := ou.Load(setupIndex, "i = s->setup_index")
	ou.DMAToBuf(dataBuf, idx, buf, n, true, "usb_packet_copy(s->data_buf + s->setup_index, len)")
	// C semantics: the copy may have overwritten setup_index itself (the
	// first out-of-bounds instance of CVE-2020-14364), and the increment
	// reads it back from memory.
	idx2 := ou.Load(setupIndex, "i = s->setup_index /* re-read after copy */")
	ni := ou.Arith(ir.ALUAdd, idx2, n, ir.W32, true, "i + len")
	ou.Store(setupIndex, ni, "s->setup_index += len")
	ou.Work(n, "usb data stage")
	ou.Jump("td_done", "goto done")

	// IN data stage: device-to-host.
	in := h.Block("st_in")
	sh16b := in.Const(16, "16")
	n2 := in.Arith(ir.ALUShr, token, sh16b, ir.W32, false, "len = token >> 16")
	zi2 := in.Const(0, "0")
	in.DMAFromBuf(dataBuf, zi2, buf, n2, false, "usb_packet_copy(out, s->data_buf, len)")
	in.Work(n2, "usb data stage")
	in.Jump("td_done", "goto done")

	// TD epilogue: status writeback, completion interrupt, next TD.
	dn := h.Block("td_done")
	so := dn.Const(TDStatus, "12")
	sa2 := dn.Arith(ir.ALUAdd, td, so, ir.W32, false, "td + 12")
	done := dn.Const(1, "QTD_DONE")
	dn.DMAWrite(sa2, done, ir.W32, "stl(td + 12, DONE)")
	ioc := dn.Const(TokenIOC, "IOC")
	ib := dn.Arith(ir.ALUAnd, token, ioc, ir.W32, false, "token & IOC")
	zd := dn.Const(0, "0")
	dn.Branch(ib, ir.RelNE, zd, ir.W32, false, "if (token & IOC)", "td_irq", "td_next")

	ti := h.Block("td_irq")
	cur3 := ti.Load(usbsts, "sts")
	intb := ti.Const(StsInt, "STS_INT")
	c5 := ti.Arith(ir.ALUOr, cur3, intb, ir.W32, false, "sts | INT")
	ti.Store(usbsts, c5, "s->usbsts |= INT")
	ti.CallPtr(irqCb, "ehci_raise_irq(s)")
	ti.Jump("td_next", "goto next")

	nx := h.Block("td_next")
	no := nx.Const(TDNext, "8")
	na := nx.Arith(ir.ALUAdd, td, no, ir.W32, false, "td + 8")
	next := nx.DMARead(na, ir.W32, "next = ldl(td + 8)")
	zn := nx.Const(0, "0")
	nx.Branch(next, ir.RelEQ, zn, ir.W32, false, "if (!next)", "chain_end", "advance")

	ce := h.Block("chain_end").CmdEnd()
	ce.Return("return /* keep s->async_td cached at the last qTD */")

	ad := h.Block("advance")
	ad.Store(asyncTD, next, "s->async_td = next")
	cnt := ad.Load(tdCount, "budget")
	oneb := ad.Const(1, "1")
	cnt2 := ad.Arith(ir.ALUAdd, cnt, oneb, ir.W8, false, "budget + 1")
	ad.Store(tdCount, cnt2, "budget++")
	lim := ad.Const(tdBudget, "TD_BUDGET")
	ad.Branch(cnt2, ir.RelGE, lim, ir.W8, false, "if (budget >= TD_BUDGET)", "budget_out", "td_loop")
	h.Block("budget_out").CmdEnd().Return("return /* microframe budget exhausted */")
}
