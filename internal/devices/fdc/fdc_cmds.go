package fdc

import "sedspec/internal/ir"

// buildWriteData models fdctrl_write_data: the FIFO write path that
// collects command and parameter bytes and kicks off execution. The Venom
// bug lives here: the FIFO store is unmasked, and an invalid command
// leaves data_len at zero so data_pos grows without bound on subsequent
// writes. The upstream fix masks the index (data_pos % FD_SECTOR_LEN).
func buildWriteData(b *ir.Builder, opts Options, fifo ir.FieldID, dataPos, dataLen, msr, curCmd ir.FieldID) {
	h := b.Handler("fdctrl_write_data")

	e := h.Block("entry")
	v := e.IOIn(ir.W8, "value = ioread8()")
	m := e.Load(msr, "m = s->msr")
	dioBit := e.Const(MSRDIO, "MSR_DIO")
	dio := e.Arith(ir.ALUAnd, m, dioBit, ir.W8, false, "m & MSR_DIO")
	zero := e.Const(0, "0")
	e.Branch(dio, ir.RelNE, zero, ir.W8, false,
		"if (s->msr & MSR_DIO) /* result phase: ignore */", "ignore", "accept")

	h.Block("ignore").Return("return")

	a := h.Block("accept")
	p0 := a.Load(dataPos, "p = s->data_pos")
	az := a.Const(0, "0")
	a.Branch(p0, ir.RelEQ, az, ir.W32, false, "if (s->data_pos == 0)", "newcmd", "store")

	// First byte: identify the command and its expected byte count.
	nc := h.Block("newcmd").CmdDecision()
	mask := nc.Const(0x5F, "0x5f")
	cmd := nc.Arith(ir.ALUAnd, v, mask, ir.W8, false, "cmd = value & 0x5f")
	nc.Store(curCmd, cmd, "s->cur_cmd = cmd")
	nc.Switch(cmd, "switch (cmd)", "invalid",
		ir.Case(CmdSpecify, "len_specify"),
		ir.Case(CmdSenseDrive, "len_sensedrive"),
		ir.Case(CmdRecalibrate, "len_recal"),
		ir.Case(CmdSenseInt, "len_senseint"),
		ir.Case(CmdDumpReg, "len_dumpreg"),
		ir.Case(CmdSeek, "len_seek"),
		ir.Case(CmdVersion, "len_version"),
		ir.Case(CmdConfigure, "len_configure"),
		ir.Case(CmdWrite, "len_write"),
		ir.Case(CmdRead, "len_read"),
		ir.Case(CmdReadID, "len_readid"),
		ir.Case(CmdFormat, "len_format"),
	)

	setLen := func(label string, n uint64, stmt string) {
		blk := h.Block(label)
		ln := blk.Const(n, stmt)
		blk.Store(dataLen, ln, "s->data_len = "+stmt)
		mm := blk.Load(msr, "m = s->msr")
		busy := blk.Const(MSRBusy, "MSR_BUSY")
		m2 := blk.Arith(ir.ALUOr, mm, busy, ir.W8, false, "m | MSR_BUSY")
		blk.Store(msr, m2, "s->msr |= MSR_BUSY")
		blk.Jump("store", "goto store")
	}
	setLen("len_specify", 3, "3")
	setLen("len_sensedrive", 2, "2")
	setLen("len_recal", 2, "2")
	setLen("len_senseint", 1, "1")
	setLen("len_dumpreg", 1, "1")
	setLen("len_seek", 3, "3")
	setLen("len_version", 1, "1")
	setLen("len_configure", 4, "4")
	setLen("len_write", 9, "9")
	setLen("len_read", 9, "9")
	setLen("len_readid", 2, "2")
	setLen("len_format", 6, "6")

	// Invalid command: data_len stays 0. The byte is still stored and
	// data_pos still increments — the state Venom exploits.
	inv := h.Block("invalid")
	inv.Jump("store", "/* unknown command: data_len stays 0 */")

	st := h.Block("store")
	p := st.Load(dataPos, "p = s->data_pos")
	idx := p
	if opts.FixVenom {
		lim := st.Const(FifoSize, "FD_SECTOR_LEN")
		idx = st.Arith(ir.ALUMod, p, lim, ir.W32, false, "p % FD_SECTOR_LEN /* CVE-2015-3456 fix */")
	}
	st.BufStore(fifo, idx, v, ir.W32, false, "s->fifo[p] = value")
	one := st.Const(1, "1")
	p2 := st.Arith(ir.ALUAdd, p, one, ir.W32, false, "p + 1")
	st.Store(dataPos, p2, "s->data_pos = p + 1")
	l := st.Load(dataLen, "l = s->data_len")
	lz := st.Const(0, "0")
	st.Branch(l, ir.RelEQ, lz, ir.W32, false, "if (s->data_len == 0)", "pend", "chk_done")

	h.Block("pend").Return("return /* still collecting */")

	cd := h.Block("chk_done")
	p3 := cd.Load(dataPos, "p = s->data_pos")
	l2 := cd.Load(dataLen, "l = s->data_len")
	cd.Branch(p3, ir.RelEQ, l2, ir.W32, false, "if (p == s->data_len)", "exec", "pend2")
	h.Block("pend2").Return("return")

	ex := h.Block("exec")
	ex.Call("fdctrl_exec_command", "fdctrl_exec_command(s)")
	ex.Return("return")
}

// buildReadData models fdctrl_read_data: draining result bytes from the
// FIFO; the last byte ends the command (a command-end block).
func buildReadData(b *ir.Builder, fifo ir.FieldID, dataPos, dataLen, msr, irqCb ir.FieldID) {
	h := b.Handler("fdctrl_read_data")
	_ = irqCb

	e := h.Block("entry")
	l := e.Load(dataLen, "l = s->data_len")
	zero := e.Const(0, "0")
	e.Branch(l, ir.RelEQ, zero, ir.W32, false, "if (s->data_len == 0)", "empty", "emit")

	em := h.Block("empty")
	z := em.Const(0, "0")
	em.IOOut(z, ir.W8, "iowrite8(0)")
	em.Return("return")

	g := h.Block("emit")
	p := g.Load(dataPos, "p = s->data_pos")
	v := g.BufLoad(fifo, p, ir.W32, false, "v = s->fifo[p]")
	g.IOOut(v, ir.W8, "iowrite8(v)")
	one := g.Const(1, "1")
	p2 := g.Arith(ir.ALUAdd, p, one, ir.W32, false, "p + 1")
	g.Store(dataPos, p2, "s->data_pos = p + 1")
	l2 := g.Load(dataLen, "l = s->data_len")
	g.Branch(p2, ir.RelGE, l2, ir.W32, false, "if (p + 1 >= s->data_len)", "done", "more")

	h.Block("more").Return("return")

	d := h.Block("done").CmdEnd()
	dz := d.Const(0, "0")
	d.Store(dataPos, dz, "s->data_pos = 0")
	d.Store(dataLen, dz, "s->data_len = 0")
	rqm := d.Const(MSRRQM, "MSR_RQM")
	d.Store(msr, rqm, "s->msr = MSR_RQM")
	d.Return("return")
}

// buildExec models the command execution dispatch once all parameter bytes
// have arrived: per-command parsing, DMA sector transfers, result setup,
// and interrupt delivery.
func buildExec(b *ir.Builder, fifo ir.FieldID, dataPos, dataLen, msr, curCmd,
	track, head, sector, status0, dmaAddr, irqCb, dor, tdr, dsr ir.FieldID) {

	h := b.Handler("fdctrl_exec_command")

	e := h.Block("entry").CmdDecision()
	c := e.Load(curCmd, "cmd = s->cur_cmd")
	e.Switch(c, "switch (s->cur_cmd)", "x_invalid",
		ir.Case(CmdSpecify, "x_specify"),
		ir.Case(CmdSenseDrive, "x_sensedrive"),
		ir.Case(CmdRecalibrate, "x_recal"),
		ir.Case(CmdSenseInt, "x_senseint"),
		ir.Case(CmdDumpReg, "x_dumpreg"),
		ir.Case(CmdSeek, "x_seek"),
		ir.Case(CmdVersion, "x_version"),
		ir.Case(CmdConfigure, "x_configure"),
		ir.Case(CmdWrite, "x_write"),
		ir.Case(CmdRead, "x_read"),
		ir.Case(CmdReadID, "x_readid"),
		ir.Case(CmdFormat, "x_format"),
	)

	// resetPhase writes the no-result epilogue: back to command phase.
	resetPhase := func(blk *ir.BlockBuilder) {
		z := blk.Const(0, "0")
		blk.Store(dataPos, z, "s->data_pos = 0")
		blk.Store(dataLen, z, "s->data_len = 0")
		rqm := blk.Const(MSRRQM, "MSR_RQM")
		blk.Store(msr, rqm, "s->msr = MSR_RQM")
	}
	// result arms the result phase with n bytes already staged in the
	// FIFO and signals completion.
	result := func(blk *ir.BlockBuilder, n uint64) {
		z := blk.Const(0, "0")
		blk.Store(dataPos, z, "s->data_pos = 0")
		ln := blk.Const(n, "nresults")
		blk.Store(dataLen, ln, "s->data_len = nresults")
		bits := blk.Const(MSRRQM|MSRDIO|MSRBusy, "MSR_RQM|MSR_DIO|MSR_BUSY")
		blk.Store(msr, bits, "s->msr = MSR_RQM | MSR_DIO | MSR_BUSY")
		blk.CallPtr(irqCb, "s->irq_cb(s)")
	}
	// stage writes one result byte into the FIFO.
	stage := func(blk *ir.BlockBuilder, at uint64, v ir.Temp, stmt string) {
		i := blk.Const(at, "i")
		blk.BufStore(fifo, i, v, ir.W32, false, stmt)
	}

	sp := h.Block("x_specify").CmdEnd()
	resetPhase(sp)
	sp.Return("return")

	sd := h.Block("x_sensedrive")
	s0 := sd.Load(status0, "v = s->status0")
	stage(sd, 0, s0, "s->fifo[0] = s->status0")
	result(sd, 1)
	sd.Return("return")

	rc := h.Block("x_recal").CmdEnd()
	z := rc.Const(0, "0")
	rc.Store(track, z, "s->track = 0")
	seekEnd := rc.Const(0x20, "FD_SR0_SEEK")
	rc.Store(status0, seekEnd, "s->status0 = FD_SR0_SEEK")
	resetPhase(rc)
	rc.CallPtr(irqCb, "s->irq_cb(s)")
	rc.Return("return")

	si := h.Block("x_senseint")
	v0 := si.Load(status0, "v = s->status0")
	stage(si, 0, v0, "s->fifo[0] = s->status0")
	tv := si.Load(track, "t = s->track")
	stage(si, 1, tv, "s->fifo[1] = s->track")
	result(si, 2)
	si.Return("return")

	dr := h.Block("x_dumpreg")
	for i, f := range []ir.FieldID{dor, tdr, dsr, track, head, sector} {
		fv := dr.Load(f, "v = reg")
		stage(dr, uint64(i), fv, "s->fifo[i] = reg")
	}
	result(dr, 10)
	dr.Return("return")

	sk := h.Block("x_seek").CmdEnd()
	i2 := sk.Const(2, "2")
	nt := sk.BufLoad(fifo, i2, ir.W32, false, "t = s->fifo[2]")
	sk.Store(track, nt, "s->track = t")
	i1 := sk.Const(1, "1")
	hb := sk.BufLoad(fifo, i1, ir.W32, false, "h = s->fifo[1]")
	two := sk.Const(2, "2")
	hs := sk.Arith(ir.ALUShr, hb, two, ir.W8, false, "h >> 2")
	oneM := sk.Const(1, "1")
	hm := sk.Arith(ir.ALUAnd, hs, oneM, ir.W8, false, "(h >> 2) & 1")
	sk.Store(head, hm, "s->head = (h >> 2) & 1")
	se := sk.Const(0x20, "FD_SR0_SEEK")
	sk.Store(status0, se, "s->status0 = FD_SR0_SEEK")
	resetPhase(sk)
	sk.CallPtr(irqCb, "s->irq_cb(s)")
	sk.Return("return")

	vr := h.Block("x_version")
	ver := vr.Const(0x90, "0x90")
	stage(vr, 0, ver, "s->fifo[0] = 0x90")
	result(vr, 1)
	vr.Return("return")

	cf := h.Block("x_configure").CmdEnd()
	resetPhase(cf)
	cf.Return("return")

	buildTransfer(h, "x_write", true, fifo, dataPos, dataLen, msr, track, head, sector, status0, dmaAddr, irqCb, result, stage)
	buildTransfer(h, "x_read", false, fifo, dataPos, dataLen, msr, track, head, sector, status0, dmaAddr, irqCb, result, stage)

	ri := h.Block("x_readid")
	for i, f := range []ir.FieldID{status0, track, head, sector} {
		fv := ri.Load(f, "v = reg")
		stage(ri, uint64(i), fv, "s->fifo[i] = reg")
	}
	result(ri, 7)
	ri.Return("return")

	fm := h.Block("x_format")
	i3 := fm.Const(3, "3")
	nsec := fm.BufLoad(fifo, i3, ir.W32, false, "n = s->fifo[3]")
	ssz := fm.Const(SectorSize, "512")
	bytes := fm.Arith(ir.ALUMul, nsec, ssz, ir.W32, false, "n * 512")
	fm.Work(bytes, "format_track(s, n)")
	fv := fm.Load(status0, "v = s->status0")
	stage(fm, 0, fv, "s->fifo[0] = s->status0")
	result(fm, 7)
	fm.Return("return")

	xi := h.Block("x_invalid").CmdEnd()
	e8 := xi.Const(0x80, "FD_SR0_INVCMD")
	xi.Store(status0, e8, "s->status0 = 0x80")
	stage(xi, 0, e8, "s->fifo[0] = 0x80")
	result(xi, 1)
	xi.Return("return")
}

// buildTransfer emits a sector-transfer command body: parse CHS and EOT
// from the parameter bytes, then loop DMA one sector per iteration.
func buildTransfer(h *ir.HandlerBuilder, label string, write bool,
	fifo ir.FieldID, dataPos, dataLen, msr, track, head, sector, status0, dmaAddr, irqCb ir.FieldID,
	result func(*ir.BlockBuilder, uint64), stage func(*ir.BlockBuilder, uint64, ir.Temp, string)) {

	blk := h.Block(label)
	i2 := blk.Const(2, "2")
	t := blk.BufLoad(fifo, i2, ir.W32, false, "t = s->fifo[2]")
	blk.Store(track, t, "s->track = t")
	i3 := blk.Const(3, "3")
	hd := blk.BufLoad(fifo, i3, ir.W32, false, "h = s->fifo[3]")
	blk.Store(head, hd, "s->head = h")
	i4 := blk.Const(4, "4")
	sc := blk.BufLoad(fifo, i4, ir.W32, false, "r = s->fifo[4]")
	blk.Store(sector, sc, "s->sector = r")
	i6 := blk.Const(6, "6")
	eot := blk.BufLoad(fifo, i6, ir.W32, false, "eot = s->fifo[6]")
	blk.Branch(eot, ir.RelGE, sc, ir.W8, false, "if (eot >= r)", label+"_multi", label+"_single")

	multi := h.Block(label + "_multi")
	n1 := multi.Arith(ir.ALUSub, eot, sc, ir.W8, false, "eot - r")
	one := multi.Const(1, "1")
	n2 := multi.Arith(ir.ALUAdd, n1, one, ir.W8, false, "eot - r + 1")
	multi.Store(dataLen, n2, "nsect = eot - r + 1") // staged in data_len pre-loop
	multi.Jump(label+"_loop", "goto loop")

	single := h.Block(label + "_single")
	o := single.Const(1, "1")
	single.Store(dataLen, o, "nsect = 1")
	single.Jump(label+"_loop", "goto loop")

	loop := h.Block(label + "_loop")
	left := loop.Load(dataLen, "left = nsect")
	lz := loop.Const(0, "0")
	loop.Branch(left, ir.RelGT, lz, ir.W32, false, "while (left > 0)", label+"_xfer", label+"_done")

	x := h.Block(label + "_xfer")
	// Shared-library helper on the data path: its internal branches would
	// contaminate the control flow, so the IPT range filter excludes it
	// (paper §IV-A).
	x.Call("glibc_memcpy", "memcpy(...)")
	addr := x.Load(dmaAddr, "addr = s->dma_addr")
	zi := x.Const(0, "0")
	sz := x.Const(SectorSize, "512")
	if write {
		x.DMAToBuf(fifo, zi, addr, sz, false, "dma_read(s->fifo, addr, 512)")
	} else {
		x.DMAFromBuf(fifo, zi, addr, sz, false, "dma_write(addr, s->fifo, 512)")
	}
	x.Work(sz, "fd_sector_io(s)")
	a2 := x.Arith(ir.ALUAdd, addr, sz, ir.W32, false, "addr + 512")
	x.Store(dmaAddr, a2, "s->dma_addr = addr + 512")
	l2 := x.Load(dataLen, "left")
	onex := x.Const(1, "1")
	l3 := x.Arith(ir.ALUSub, l2, onex, ir.W32, false, "left - 1")
	x.Store(dataLen, l3, "left = left - 1")
	sc2 := x.Load(sector, "r = s->sector")
	sc3 := x.Arith(ir.ALUAdd, sc2, onex, ir.W8, false, "r + 1")
	x.Store(sector, sc3, "s->sector = r + 1")
	x.Jump(label+"_loop", "continue")

	d := h.Block(label + "_done")
	s0 := d.Load(status0, "v = s->status0")
	stage(d, 0, s0, "s->fifo[0] = s->status0")
	tv := d.Load(track, "t = s->track")
	stage(d, 1, tv, "s->fifo[1] = ...")
	hv := d.Load(head, "h = s->head")
	stage(d, 2, hv, "s->fifo[2] = ...")
	sv := d.Load(sector, "r = s->sector")
	stage(d, 3, sv, "s->fifo[3] = ...")
	result(d, 7)
	d.Return("return")
}

// buildHelpers emits the reset routine and the IRQ callback target.
func buildHelpers(b *ir.Builder, fifo ir.FieldID, dataPos, dataLen, msr, status0 ir.FieldID) {
	_ = fifo
	h := b.Handler("fdctrl_reset_fifo")
	e := h.Block("entry")
	z := e.Const(0, "0")
	e.Store(dataPos, z, "s->data_pos = 0")
	e.Store(dataLen, z, "s->data_len = 0")
	e.Store(status0, z, "s->status0 = 0")
	rqm := e.Const(MSRRQM, "MSR_RQM")
	e.Store(msr, rqm, "s->msr = MSR_RQM")
	e.Return("return")

	irq := b.Handler("fdctrl_raise_irq")
	ib := irq.Block("entry")
	ib.IRQRaise("qemu_set_irq(s->irq, 1)")
	ib.Return("return")

	// The pivot target an attacker reaches after corrupting irq_cb.
	g := b.Handler("host_gadget")
	gb := g.Block("entry")
	pw := gb.Const(0xFF, "0xff")
	gb.Store(status0, pw, "/* attacker-controlled execution */")
	gb.Return("return")

	// Shared-library helper: looping control flow outside the device's
	// code range. The trace range filter drops its branches.
	lib := b.Handler("glibc_memcpy", ir.Library())
	le := lib.Block("entry")
	n := le.Const(8, "n = 8 /* words */")
	lz := le.Const(0, "0")
	le.Branch(n, ir.RelGT, lz, ir.W32, false, "if (n > 0)", "aligned", "done")
	la := lib.Block("aligned")
	mask := la.Const(7, "7")
	al := la.Arith(ir.ALUAnd, n, mask, ir.W32, false, "n & 7")
	la.Branch(al, ir.RelEQ, lz, ir.W32, false, "if (aligned)", "wide", "tail")
	lib.Block("wide").Return("return")
	lib.Block("tail").Return("return")
	lib.Block("done").Return("return")

	// Kernel tracepoint: ring-filtered control flow.
	k := b.Handler("kvm_trace_exit", ir.Kernel())
	ke := k.Block("entry")
	en := ke.Const(1, "tracing enabled")
	kz := ke.Const(0, "0")
	ke.Branch(en, ir.RelNE, kz, ir.W8, false, "if (trace_enabled)", "emit", "skip")
	k.Block("emit").Return("return")
	k.Block("skip").Return("return")
}
