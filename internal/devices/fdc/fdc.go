// Package fdc models the Intel 82078 floppy disk controller as emulated by
// QEMU (hw/block/fdc.c): the port map (SRA/SRB/DOR/TDR/MSR/DSR/FIFO/DIR/
// CCR), the three-phase command protocol (command bytes through the FIFO,
// execution with DMA sector transfer, result bytes read back), and a
// representative command set.
//
// The model seeds CVE-2015-3456 ("Venom"): when an invalid command leaves
// the controller's expected transfer length at zero, subsequent FIFO
// writes keep incrementing data_pos without bound, walking writes past the
// 512-byte FIFO into the rest of the FDCtrl structure. Options.FixVenom
// applies the upstream fix (masking the FIFO index).
package fdc

import (
	"sedspec/internal/devices/devutil"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// Port offsets within the controller's window (attach at 0x3f0).
const (
	PortSRA  = 0 // status register A (read)
	PortSRB  = 1 // status register B (read)
	PortDOR  = 2 // digital output register
	PortTDR  = 3 // tape drive register
	PortMSR  = 4 // main status register (read) / data rate select (write)
	PortFIFO = 5 // data FIFO
	PortDIR  = 7 // digital input register (read) / config control (write)
	// PortDMALo and PortDMAHi program the sector-transfer guest address —
	// this window stands in for the ISA DMA controller the real board
	// routes floppy transfers through.
	PortDMALo = 8
	PortDMAHi = 9
	// PortCount is the port window size.
	PortCount = 10
)

// MSR bits.
const (
	MSRRQM  = 0x80 // request for master: FIFO ready
	MSRDIO  = 0x40 // data direction: set = controller to CPU (result phase)
	MSRBusy = 0x10 // command in progress
)

// Commands (first FIFO byte, masked with 0x5F to fold MT/MFM variants).
const (
	CmdSpecify     = 0x03
	CmdSenseDrive  = 0x04
	CmdRecalibrate = 0x07
	CmdSenseInt    = 0x08
	CmdDumpReg     = 0x0E // rare
	CmdSeek        = 0x0F
	CmdVersion     = 0x10
	CmdConfigure   = 0x13
	CmdWrite       = 0x45
	CmdRead        = 0x46
	CmdReadID      = 0x4A // rare
	CmdFormat      = 0x4D // rare
)

// FifoSize is the controller FIFO capacity (one sector).
const FifoSize = 512

// SectorSize is the transfer unit.
const SectorSize = 512

// Options configure seeded vulnerabilities.
type Options struct {
	// FixVenom applies the CVE-2015-3456 fix (FIFO index masking).
	FixVenom bool
}

// Device is the emulated floppy disk controller.
type Device struct {
	*devutil.Base
}

// New builds the controller.
func New(opts Options) *Device {
	prog := build(opts)
	return &Device{Base: devutil.NewBase(prog, func(st *interp.State, p *ir.Program) {
		devutil.SetFunc(st, p, "irq_cb", "fdctrl_raise_irq")
		st.SetIntByName("msr", MSRRQM)
		st.SetIntByName("sra", 0x80) // interrupt pending mirrors elsewhere
		st.SetIntByName("srb", 0xC0)
	})}
}

func build(opts Options) *ir.Program {
	b := ir.NewBuilder("fdc")

	// FDCtrl control structure. The FIFO sits ahead of the transfer
	// bookkeeping and the IRQ callback, as in the C struct, so a Venom
	// overflow walks into them.
	fifo := b.Buf("fifo", FifoSize)
	dataPos := b.Int("data_pos", ir.W32)
	dataLen := b.Int("data_len", ir.W32)
	irqCb := b.Func("irq_cb")
	msr := b.Int("msr", ir.W8, ir.HWRegister())
	dor := b.Int("dor", ir.W8, ir.HWRegister())
	tdr := b.Int("tdr", ir.W8, ir.HWRegister())
	dsr := b.Int("dsr", ir.W8, ir.HWRegister())
	sra := b.Int("sra", ir.W8, ir.HWRegister())
	srb := b.Int("srb", ir.W8, ir.HWRegister())
	dirReg := b.Int("dir", ir.W8, ir.HWRegister())
	ccr := b.Int("ccr", ir.W8, ir.HWRegister())
	curCmd := b.Int("cur_cmd", ir.W8, ir.HWRegister())
	track := b.Int("track", ir.W8)
	head := b.Int("head", ir.W8)
	sector := b.Int("sector", ir.W8)
	status0 := b.Int("status0", ir.W8)
	dmaAddr := b.Int("dma_addr", ir.W32)
	_ = ccr

	// --- dispatch ---
	h := b.Handler("fdctrl_ioport")
	e := h.Block("entry").Entry()
	// Kernel-side tracepoint fired on every VM exit: its control flow is
	// what the ring filter exists to suppress (paper §IV-A).
	e.Call("kvm_trace_exit", "trace_kvm_exit()")
	isw := e.IOIsWrite("dir = req->write")
	onev := e.Const(1, "1")
	e.Branch(isw, ir.RelEQ, onev, ir.W8, false, "if (req->write)", "wr", "rd")

	// --- write side ---
	w := h.Block("wr")
	waddr := w.IOAddr("addr = req->addr")
	w.Switch(waddr, "switch (addr)", "out",
		ir.Case(PortDOR, "w_dor"),
		ir.Case(PortTDR, "w_tdr"),
		ir.Case(PortMSR, "w_dsr"),
		ir.Case(PortFIFO, "w_fifo"),
		ir.Case(PortDIR, "w_ccr"),
		ir.Case(PortDMALo, "w_dmalo"),
		ir.Case(PortDMAHi, "w_dmahi"),
	)

	wd := h.Block("w_dor")
	dv := wd.IOIn(ir.W8, "v = ioread8()")
	old := wd.Load(dor, "old = s->dor")
	wd.Store(dor, dv, "s->dor = v")
	rstBit := wd.Const(0x04, "DOR_NRESET")
	oldRst := wd.Arith(ir.ALUAnd, old, rstBit, ir.W8, false, "old & DOR_NRESET")
	newRst := wd.Arith(ir.ALUAnd, dv, rstBit, ir.W8, false, "v & DOR_NRESET")
	zero := wd.Const(0, "0")
	wd.Branch(oldRst, ir.RelEQ, zero, ir.W8, false, "if (!(old & DOR_NRESET))", "w_dor_chk", "out")
	wdc := h.Block("w_dor_chk")
	wdc.Branch(newRst, ir.RelNE, zero, ir.W8, false, "if (v & DOR_NRESET)", "w_dor_reset", "out")
	wdr := h.Block("w_dor_reset")
	wdr.Call("fdctrl_reset_fifo", "fdctrl_reset_fifo(s)")
	wdr.CallPtr(irqCb, "fdctrl_raise_irq(s)")
	wdr.Jump("out", "goto out")

	wt := h.Block("w_tdr")
	tv := wt.IOIn(ir.W8, "v = ioread8()")
	wt.Store(tdr, tv, "s->tdr = v")
	wt.Jump("out", "goto out")

	ws := h.Block("w_dsr")
	sv := ws.IOIn(ir.W8, "v = ioread8()")
	ws.Store(dsr, sv, "s->dsr = v")
	ws.Jump("out", "goto out")

	wc := h.Block("w_ccr")
	cv := wc.IOIn(ir.W8, "v = ioread8()")
	wc.Store(ccr, cv, "s->ccr = v")
	wc.Jump("out", "goto out")

	wl := h.Block("w_dmalo")
	lv := wl.IOIn(ir.W8, "v = ioread8()")
	wl.Store(dmaAddr, mixDMA(wl, dmaAddr, lv, false), "s->dma_addr = (s->dma_addr & 0xff00) | v")
	wl.Jump("out", "goto out")

	wh := h.Block("w_dmahi")
	hv := wh.IOIn(ir.W8, "v = ioread8()")
	wh.Store(dmaAddr, mixDMA(wh, dmaAddr, hv, true), "s->dma_addr = (s->dma_addr & 0xff) | (v<<8)")
	wh.Jump("out", "goto out")

	wf := h.Block("w_fifo")
	wf.Call("fdctrl_write_data", "fdctrl_write_data(s, v)")
	wf.Jump("out", "goto out")

	// --- read side ---
	r := h.Block("rd")
	raddr := r.IOAddr("addr = req->addr")
	r.Switch(raddr, "switch (addr)", "out",
		ir.Case(PortSRA, "r_sra"),
		ir.Case(PortSRB, "r_srb"),
		ir.Case(PortDOR, "r_dor"),
		ir.Case(PortTDR, "r_tdr"),
		ir.Case(PortMSR, "r_msr"),
		ir.Case(PortFIFO, "r_fifo"),
		ir.Case(PortDIR, "r_dir"),
	)
	emit8 := func(label string, f ir.FieldID, stmt string) {
		blk := h.Block(label)
		v := blk.Load(f, stmt)
		blk.IOOut(v, ir.W8, "iowrite8(v)")
		blk.Jump("out", "goto out")
	}
	emit8("r_sra", sra, "v = s->sra")
	emit8("r_srb", srb, "v = s->srb")
	emit8("r_dor", dor, "v = s->dor")
	emit8("r_tdr", tdr, "v = s->tdr")
	emit8("r_msr", msr, "v = s->msr")

	rdir := h.Block("r_dir")
	med := rdir.EnvRead(ir.EnvMedia, "present = blk_is_inserted(s->blk)")
	one := rdir.Const(1, "1")
	rdir.Branch(med, ir.RelEQ, one, ir.W8, false, "if (media_present)", "r_dir_in", "r_dir_chg")
	rdi := h.Block("r_dir_in")
	d0 := rdi.Const(0x00, "0")
	rdi.Store(dirReg, d0, "s->dir = 0")
	rdi.Jump("r_dir_out", "goto emit")
	rdg := h.Block("r_dir_chg")
	d80 := rdg.Const(0x80, "DIR_DSKCHG")
	rdg.Store(dirReg, d80, "s->dir = DIR_DSKCHG")
	rdg.Jump("r_dir_out", "goto emit")
	rdo := h.Block("r_dir_out")
	dvv := rdo.Load(dirReg, "v = s->dir")
	rdo.IOOut(dvv, ir.W8, "iowrite8(v)")
	rdo.Jump("out", "goto out")

	rf := h.Block("r_fifo")
	rf.Call("fdctrl_read_data", "v = fdctrl_read_data(s)")
	rf.Jump("out", "goto out")

	h.Block("out").Exit().Halt("return")

	buildWriteData(b, opts, fifo, dataPos, dataLen, msr, curCmd)
	buildReadData(b, fifo, dataPos, dataLen, msr, irqCb)
	buildExec(b, fifo, dataPos, dataLen, msr, curCmd, track, head, sector, status0, dmaAddr, irqCb, dor, tdr, dsr)
	buildHelpers(b, fifo, dataPos, dataLen, msr, status0)

	b.Dispatch("fdctrl_ioport")
	return devutil.MustBuild(b)
}

// mixDMA builds (field & keepMask) | (v [<<8]) for the DMA address halves.
func mixDMA(bb *ir.BlockBuilder, f ir.FieldID, v ir.Temp, high bool) ir.Temp {
	cur := bb.Load(f, "cur = s->dma_addr")
	if high {
		keep := bb.Const(0x00FF, "0x00ff")
		kept := bb.Arith(ir.ALUAnd, cur, keep, ir.W32, false, "cur & 0xff")
		sh := bb.Const(8, "8")
		vs := bb.Arith(ir.ALUShl, v, sh, ir.W32, false, "v << 8")
		return bb.Arith(ir.ALUOr, kept, vs, ir.W32, false, "(cur & 0xff) | (v << 8)")
	}
	keep := bb.Const(0xFF00, "0xff00")
	kept := bb.Arith(ir.ALUAnd, cur, keep, ir.W32, false, "cur & 0xff00")
	return bb.Arith(ir.ALUOr, kept, v, ir.W32, false, "(cur & 0xff00) | v")
}
