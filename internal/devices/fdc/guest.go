package fdc

import (
	"fmt"

	"sedspec/internal/devices/devutil"
)

// Guest drives the controller the way a floppy driver would: program the
// DMA address, push command bytes through the FIFO while honouring MSR
// handshaking, and drain result bytes.
type Guest struct {
	p devutil.Port
	// DMABuf is the guest-physical address used for sector transfers.
	DMABuf uint32
}

// NewGuest wraps a port driver. The default DMA buffer sits at 0x8000.
func NewGuest(p devutil.Port) *Guest { return &Guest{p: p, DMABuf: 0x8000} }

// Reset pulses the DOR reset line, re-initializing the controller.
func (g *Guest) Reset() error {
	if _, err := g.p.Out8(PortDOR, 0x00); err != nil {
		return err
	}
	_, err := g.p.Out8(PortDOR, 0x0C) // nreset | dma gate
	return err
}

// MSR reads the main status register.
func (g *Guest) MSR() (byte, error) {
	out, _, err := g.p.In(PortMSR)
	if err != nil {
		return 0, err
	}
	if len(out) == 0 {
		return 0, fmt.Errorf("fdc: empty MSR read")
	}
	return out[0], nil
}

// Command pushes a raw command through the FIFO and drains any result
// bytes, returning them.
func (g *Guest) Command(bytes ...byte) ([]byte, error) {
	for _, v := range bytes {
		if _, err := g.p.Out8(PortFIFO, v); err != nil {
			return nil, err
		}
	}
	return g.drainResults()
}

// PushFIFO writes one raw byte to the FIFO without result handshaking.
// Exploit PoCs use it: once the controller state is corrupted, MSR can no
// longer be trusted to terminate a drain loop.
func (g *Guest) PushFIFO(v byte) error {
	_, err := g.p.Out8(PortFIFO, v)
	return err
}

// drainResults reads result bytes while MSR signals a result phase.
func (g *Guest) drainResults() ([]byte, error) {
	var out []byte
	for i := 0; i < 64; i++ {
		m, err := g.MSR()
		if err != nil {
			return out, err
		}
		if m&MSRDIO == 0 {
			return out, nil
		}
		b, _, err := g.p.In(PortFIFO)
		if err != nil {
			return out, err
		}
		if len(b) > 0 {
			out = append(out, b[0])
		}
	}
	return out, fmt.Errorf("fdc: result phase did not terminate")
}

// SetDMA programs the transfer address (the ISA-DMA stand-in ports).
func (g *Guest) SetDMA(addr uint16) error {
	if _, err := g.p.Out8(PortDMALo, byte(addr)); err != nil {
		return err
	}
	_, err := g.p.Out8(PortDMAHi, byte(addr>>8))
	return err
}

// Specify issues SPECIFY with typical step/head timings.
func (g *Guest) Specify() error {
	_, err := g.Command(CmdSpecify, 0xAF, 0x02)
	return err
}

// Recalibrate seeks drive 0 to track zero and acknowledges the interrupt.
func (g *Guest) Recalibrate() error {
	if _, err := g.Command(CmdRecalibrate, 0x00); err != nil {
		return err
	}
	_, err := g.SenseInt()
	return err
}

// SenseInt issues SENSE INTERRUPT STATUS, returning (st0, track).
func (g *Guest) SenseInt() ([]byte, error) {
	return g.Command(CmdSenseInt)
}

// Seek moves the head and acknowledges the interrupt.
func (g *Guest) Seek(head, track byte) error {
	if _, err := g.Command(CmdSeek, head<<2, track); err != nil {
		return err
	}
	_, err := g.SenseInt()
	return err
}

// Version reads the controller version byte.
func (g *Guest) Version() (byte, error) {
	out, err := g.Command(CmdVersion)
	if err != nil {
		return 0, err
	}
	if len(out) == 0 {
		return 0, fmt.Errorf("fdc: no version byte")
	}
	return out[0], nil
}

// Configure issues CONFIGURE with implied-seek enabled.
func (g *Guest) Configure() error {
	_, err := g.Command(CmdConfigure, 0x00, 0x57, 0x00)
	return err
}

// transfer issues READ or WRITE for sectors [sector, eot] on track/head,
// having programmed the DMA address first.
func (g *Guest) transfer(cmd, track, head, sector, eot byte) error {
	if err := g.SetDMA(uint16(g.DMABuf)); err != nil {
		return err
	}
	res, err := g.Command(cmd,
		head<<2, // drive/head select
		track,   // C
		head,    // H
		sector,  // R
		2,       // N: 512-byte sectors
		eot,     // EOT
		0x1B,    // GPL
		0xFF,    // DTL
	)
	if err != nil {
		return err
	}
	if len(res) != 7 {
		return fmt.Errorf("fdc: transfer returned %d result bytes, want 7", len(res))
	}
	return nil
}

// ReadSectors transfers sectors [sector, eot] from the medium to guest
// memory.
func (g *Guest) ReadSectors(track, head, sector, eot byte) error {
	return g.transfer(CmdRead, track, head, sector, eot)
}

// WriteSectors transfers sectors [sector, eot] from guest memory to the
// medium.
func (g *Guest) WriteSectors(track, head, sector, eot byte) error {
	return g.transfer(CmdWrite, track, head, sector, eot)
}

// ReadID issues the rare READ ID command.
func (g *Guest) ReadID(head byte) error {
	_, err := g.Command(CmdReadID, head<<2)
	return err
}

// DumpReg issues the rare DUMPREG diagnostic command.
func (g *Guest) DumpReg() error {
	_, err := g.Command(CmdDumpReg)
	return err
}

// Format issues the rare FORMAT TRACK command.
func (g *Guest) Format(head, n, sectors byte) error {
	_, err := g.Command(CmdFormat, head<<2, n, 0x1B, sectors, 0xF6)
	return err
}

// SenseDrive issues SENSE DRIVE STATUS.
func (g *Guest) SenseDrive() error {
	_, err := g.Command(CmdSenseDrive, 0x00)
	return err
}

// CheckMedia reads the digital input register (media-change bit).
func (g *Guest) CheckMedia() (byte, error) {
	out, _, err := g.p.In(PortDIR)
	if err != nil {
		return 0, err
	}
	if len(out) == 0 {
		return 0, fmt.Errorf("fdc: empty DIR read")
	}
	return out[0], nil
}
