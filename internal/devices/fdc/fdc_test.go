package fdc_test

import (
	"bytes"
	"errors"
	"sedspec/internal/core"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/fdc"
	"sedspec/internal/machine"
	"sedspec/internal/workload"
)

func setup(t *testing.T, opts fdc.Options) (*sedspec.Machine, *sedspec.Attached, *fdc.Guest) {
	t.Helper()
	m := sedspec.NewMachine()
	dev := fdc.New(opts)
	att := m.Attach(dev, machine.WithPIO(0, fdc.PortCount))
	return m, att, fdc.NewGuest(sedspec.NewDriver(att))
}

func train(d *sedspec.Driver) error {
	return workload.TrainFDC(d, workload.TrainConfig{Light: true})
}

func TestGuestCommandProtocol(t *testing.T) {
	m, _, g := setup(t, fdc.Options{})

	if err := g.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	v, err := g.Version()
	if err != nil {
		t.Fatalf("Version: %v", err)
	}
	if v != 0x90 {
		t.Errorf("version = %#x, want 0x90", v)
	}
	if err := g.Seek(0, 7); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	res, err := g.SenseInt()
	if err != nil {
		t.Fatalf("SenseInt: %v", err)
	}
	if len(res) != 2 || res[1] != 7 {
		t.Errorf("SenseInt = %v, want track 7", res)
	}
	if !m.IRQ.Level(0) {
		t.Error("seek should raise the interrupt line")
	}
}

func TestSectorTransferRoundTrip(t *testing.T) {
	m, _, g := setup(t, fdc.Options{})
	if err := g.Reset(); err != nil {
		t.Fatal(err)
	}
	// Seed guest memory at the DMA buffer, write 2 sectors, wipe, read
	// back.
	want := make([]byte, 2*fdc.SectorSize)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := m.Mem.Write(uint64(g.DMABuf), want); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteSectors(0, 0, 1, 2); err != nil {
		t.Fatalf("WriteSectors: %v", err)
	}
	// The write staged sectors through the FIFO; the last sector's data
	// remains there. Reading the same span must push FIFO contents back.
	if err := m.Mem.Write(uint64(g.DMABuf), make([]byte, 2*fdc.SectorSize)); err != nil {
		t.Fatal(err)
	}
	if err := g.ReadSectors(0, 0, 1, 2); err != nil {
		t.Fatalf("ReadSectors: %v", err)
	}
	got := make([]byte, fdc.SectorSize)
	if err := m.Mem.Read(uint64(g.DMABuf), got); err != nil {
		t.Fatal(err)
	}
	// The model has no disk image: reads return FIFO contents (the last
	// written sector), whose first bytes the READ command's own command
	// and result staging overwrote — exactly as the shared FIFO of the
	// real controller would. Verify the DMA path moved the sector tail.
	for i := 16; i < fdc.SectorSize; i++ {
		if got[i] != want[fdc.SectorSize+i] {
			t.Fatalf("sector byte %d = %#x, want %#x", i, got[i], want[fdc.SectorSize+i])
		}
	}
}

func TestTrainingWorkloadRuns(t *testing.T) {
	m, att, _ := setup(t, fdc.Options{})
	d := sedspec.NewDriver(att)
	if err := train(d); err != nil {
		t.Fatalf("TrainFDC: %v", err)
	}
	if m.Halted() {
		t.Fatal("machine halted during training")
	}
}

func learnFDC(t *testing.T, att *sedspec.Attached) *sedspec.LearnResult {
	t.Helper()
	r, err := sedspec.LearnFull(att, train)
	if err != nil {
		t.Fatalf("LearnFull: %v", err)
	}
	return r
}

func TestSpecLearnsCommands(t *testing.T) {
	_, att, _ := setup(t, fdc.Options{})
	r := learnFDC(t, att)
	// Commands trained: specify, sense-drive, recalibrate, sense-int,
	// seek, version, configure, write, read = 9.
	if r.Spec.Stats.Commands != 9 {
		t.Errorf("commands = %d, want 9", r.Spec.Stats.Commands)
	}
	if r.Spec.Stats.SyncPoints == 0 {
		t.Error("media-presence check should be a sync point")
	}
	prog := att.Dev().Program()
	for _, name := range []string{"fifo", "data_pos", "data_len", "irq_cb", "msr", "cur_cmd"} {
		if !r.Params.Contains(prog.FieldIndex(name)) {
			t.Errorf("param %q not selected", name)
		}
	}
}

func TestBenignPassesUnderProtection(t *testing.T) {
	m, att, _ := setup(t, fdc.Options{})
	spec := learnFDC(t, att).Spec
	chk := sedspec.Protect(att, spec)
	d := sedspec.NewDriver(att)
	if err := train(d); err != nil {
		t.Fatalf("benign traffic blocked: %v", err)
	}
	if m.Halted() {
		t.Fatal("halted on benign traffic")
	}
	st := chk.Stats()
	if st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies != 0 {
		t.Fatalf("anomalies on benign traffic: %+v", st)
	}
}

// venom drives CVE-2015-3456: an invalid command leaves data_len at 0, and
// repeated FIFO writes walk data_pos past the 512-byte FIFO.
func venom(g *fdc.Guest, writes int) error {
	if err := g.PushFIFO(0x77); err != nil { // invalid command byte
		return err
	}
	for i := 0; i < writes; i++ {
		if err := g.PushFIFO(0x42); err != nil {
			return err
		}
	}
	return nil
}

func TestVenomCorruptsUnprotectedDevice(t *testing.T) {
	_, att, g := setup(t, fdc.Options{})
	if err := g.Reset(); err != nil {
		t.Fatal(err)
	}
	// 540 writes: indices 0..539 walk past fifo[512] into data_pos and
	// beyond.
	if err := venom(g, 540); err != nil {
		t.Fatalf("unprotected venom errored early: %v", err)
	}
	pos, _ := att.Dev().State().IntByName("data_pos")
	if pos <= 512 {
		t.Errorf("data_pos = %d, want > 512 (unbounded growth)", pos)
	}
}

func TestVenomFixStopsOverflow(t *testing.T) {
	_, att, g := setup(t, fdc.Options{FixVenom: true})
	if err := g.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := venom(g, 600); err != nil {
		t.Fatalf("patched venom errored: %v", err)
	}
	// data_pos still grows, but stores are masked into the FIFO: nothing
	// outside it was touched. irq_cb must be intact.
	prog := att.Dev().Program()
	if got := att.Dev().State().FuncPtr(prog.FieldIndex("irq_cb")); got != uint64(prog.HandlerIndex("fdctrl_raise_irq")) {
		t.Error("irq_cb corrupted despite fix")
	}
}

func TestVenomBlockedBySEDSpec(t *testing.T) {
	m, att, _ := setup(t, fdc.Options{})
	spec := learnFDC(t, att).Spec
	sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyParameter))

	g := fdc.NewGuest(sedspec.NewDriver(att))
	err := venom(g, 540)
	if err == nil {
		t.Fatal("venom was not blocked")
	}
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) {
		t.Fatalf("error %v does not wrap an Anomaly", err)
	}
	if anom.Strategy != checker.StrategyParameter {
		t.Errorf("strategy = %v, want parameter-check", anom.Strategy)
	}
	if !m.Halted() {
		t.Error("machine should halt in protection mode")
	}
	// The device's FIFO index never escaped.
	pos, _ := att.Dev().State().IntByName("data_pos")
	if pos > 512 {
		t.Errorf("data_pos = %d: overflow reached the device", pos)
	}
}

func TestVenomCaughtByConditionalCheckToo(t *testing.T) {
	// The paper notes Venom violates the conditional-jump check as well:
	// the invalid-command path is never traversed in training.
	_, att, _ := setup(t, fdc.Options{})
	spec := learnFDC(t, att).Spec
	sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyConditionalJump))

	g := fdc.NewGuest(sedspec.NewDriver(att))
	err := venom(g, 1)
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyConditionalJump {
		t.Fatalf("want conditional-jump anomaly, got %v", err)
	}
}

func TestRareCommandsFlagged(t *testing.T) {
	_, att, _ := setup(t, fdc.Options{})
	spec := learnFDC(t, att).Spec
	sedspec.Protect(att, spec)
	g := fdc.NewGuest(sedspec.NewDriver(att))
	err := g.DumpReg() // legitimate but untrained
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyConditionalJump {
		t.Fatalf("want conditional-jump anomaly for rare command, got %v", err)
	}
}

// TestMediaChangeSyncPoint: the DIR register's disk-change bit depends on
// media presence — an environment value the specification keeps as a sync
// point. Ejecting and inserting the medium at runtime must not trip the
// checker.
func TestMediaChangeSyncPoint(t *testing.T) {
	m, att, g := setup(t, fdc.Options{})
	spec := learnFDC(t, att).Spec
	chk := sedspec.Protect(att, spec)
	for _, present := range []bool{true, false, false, true} {
		att.SetMedia(present)
		dir, err := g.CheckMedia()
		if err != nil {
			t.Fatalf("media=%v check blocked: %v", present, err)
		}
		wantBit := byte(0x80)
		if present {
			wantBit = 0
		}
		if dir != wantBit {
			t.Errorf("media=%v DIR = %#x, want %#x", present, dir, wantBit)
		}
	}
	if m.Halted() {
		t.Fatal("machine halted")
	}
	if st := chk.Stats(); st.CondAnomalies != 0 {
		t.Fatalf("media toggling caused anomalies: %+v", st)
	}
}

// TestSpecPersistenceRoundTrip saves the learned specification as JSON,
// reloads it against the same program, and verifies the reloaded spec
// protects identically: benign traffic clean, Venom blocked.
func TestSpecPersistenceRoundTrip(t *testing.T) {
	_, att, _ := setup(t, fdc.Options{})
	spec := learnFDC(t, att).Spec

	var buf bytes.Buffer
	if err := spec.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	reloaded, err := core.Load(att.Dev().Program(), &buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if reloaded.Stats != spec.Stats {
		t.Errorf("stats changed across round trip")
	}

	chk := sedspec.Protect(att, reloaded)
	if chk.Mode() != checker.ModeProtection {
		t.Errorf("mode = %v, want protection", chk.Mode())
	}
	d := sedspec.NewDriver(att)
	if err := train(d); err != nil {
		t.Fatalf("benign traffic blocked under reloaded spec: %v", err)
	}
	g := fdc.NewGuest(d)
	err = venom(g, 540)
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) {
		t.Fatalf("venom not blocked under reloaded spec: %v", err)
	}
}
