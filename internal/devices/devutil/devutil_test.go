package devutil_test

import (
	"testing"

	"sedspec/internal/devices/devutil"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

func tinyProgram(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("tiny")
	b.Int("reg", ir.W8)
	b.Func("cb")
	h := b.Handler("dispatch")
	h.Block("e").Entry().Halt("return")
	cb := b.Handler("on_irq")
	cb.Block("e").Return("return")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestBaseLifecycle(t *testing.T) {
	prog := tinyProgram(t)
	resets := 0
	base := devutil.NewBase(prog, func(st *interp.State, p *ir.Program) {
		resets++
		st.SetIntByName("reg", 0x42)
		devutil.SetFunc(st, p, "cb", "on_irq")
	})
	if base.Name() != "tiny" || base.Program() != prog {
		t.Error("identity accessors wrong")
	}
	if resets != 1 {
		t.Errorf("NewBase should reset once, got %d", resets)
	}
	if v, _ := base.State().IntByName("reg"); v != 0x42 {
		t.Errorf("power-on value not applied: %#x", v)
	}
	if got := base.State().FuncPtr(prog.FieldIndex("cb")); got != uint64(prog.HandlerIndex("on_irq")) {
		t.Error("SetFunc did not install the handler")
	}

	base.State().SetIntByName("reg", 0x99)
	base.Reset()
	if v, _ := base.State().IntByName("reg"); v != 0x42 {
		t.Error("Reset should restore power-on values")
	}
	if resets != 2 {
		t.Errorf("resets = %d, want 2", resets)
	}
}

func TestSetFuncPanicsOnUnknown(t *testing.T) {
	prog := tinyProgram(t)
	st := interp.NewState(prog)
	defer func() {
		if recover() == nil {
			t.Error("SetFunc with unknown names should panic (programming error)")
		}
	}()
	devutil.SetFunc(st, prog, "ghost", "on_irq")
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	b := ir.NewBuilder("bad")
	h := b.Handler("dispatch")
	h.Block("e").Jump("nowhere", "goto nowhere")
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on an invalid program")
		}
	}()
	devutil.MustBuild(b)
}
