// Package devutil provides the shared scaffolding for emulated device
// models: a machine.Device implementation wrapping a device program, its
// control structure, and a power-on reset routine.
package devutil

import (
	"fmt"

	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// ResetFunc sets a device control structure to power-on values.
type ResetFunc func(st *interp.State, prog *ir.Program)

// Base implements machine.Device for a built device program.
type Base struct {
	prog  *ir.Program
	state *interp.State
	reset ResetFunc
}

// NewBase wraps a program and reset routine, applying the reset once.
func NewBase(prog *ir.Program, reset ResetFunc) *Base {
	b := &Base{prog: prog, state: interp.NewState(prog), reset: reset}
	b.Reset()
	return b
}

// Name implements machine.Device.
func (b *Base) Name() string { return b.prog.Name }

// Program implements machine.Device.
func (b *Base) Program() *ir.Program { return b.prog }

// State implements machine.Device.
func (b *Base) State() *interp.State { return b.state }

// Reset implements machine.Device: zero the structure and apply power-on
// values.
func (b *Base) Reset() {
	b.state.Reset()
	if b.reset != nil {
		b.reset(b.state, b.prog)
	}
}

// MustBuild finalizes a builder, panicking on error. Device definitions
// are static program text: a build failure is a programming error caught
// by any test, not a runtime condition.
func MustBuild(b *ir.Builder) *ir.Program {
	prog, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("devutil: device program invalid: %v", err))
	}
	return prog
}

// SetFunc stores a handler index into a function-pointer field by names;
// used by reset routines to install power-on callbacks.
func SetFunc(st *interp.State, prog *ir.Program, field, handler string) {
	fi := prog.FieldIndex(field)
	hi := prog.HandlerIndex(handler)
	if fi < 0 || hi < 0 {
		panic(fmt.Sprintf("devutil: unknown field %q or handler %q", field, handler))
	}
	st.SetFuncPtr(fi, uint64(hi))
}
