package devutil

import (
	"sedspec/internal/interp"
	"sedspec/internal/machine"
)

// Port is the guest's view of a device: the subset of the facade Driver
// that device guest-helpers need. Implemented by sedspec.Driver.
type Port interface {
	Out(port uint64, data []byte) (*interp.Result, error)
	Out8(port uint64, v byte) (*interp.Result, error)
	In(port uint64) ([]byte, *interp.Result, error)
	MMIOWrite(addr uint64, data []byte) (*interp.Result, error)
	MMIORead(addr uint64) ([]byte, *interp.Result, error)
	Machine() *machine.Machine
	Attached() *machine.Attached
}
