// Package sdhci models an SD Host Controller Interface as emulated by QEMU
// (hw/sd/sdhci.c with the sd.c card model behind it): the MMIO register
// file, the SD command set dispatched through the CMD register, and
// SDMA-style multi-block transfers that pause at buffer boundaries and are
// resumed by the guest acknowledging the DMA-interrupt status.
//
// The model seeds CVE-2021-3409: the BLKSIZE register remains writable
// while a transfer is in flight, so shrinking it below the current
// intra-block offset makes the "remaining bytes" expression
// (blksize - data_count) underflow, driving the transfer engine out of the
// FIFO buffer. Options.Fix3409 applies the upstream fix (the register is
// locked during an active transfer).
package sdhci

import (
	"sedspec/internal/devices/devutil"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// MMIO register offsets (within the controller's window).
const (
	RegSDMA      = 0x00 // SDMA system address (u32)
	RegBlkSize   = 0x04 // block size (u16)
	RegBlkCnt    = 0x06 // block count (u16)
	RegArg       = 0x08 // command argument (u32)
	RegCmd       = 0x0E // command register (u16)
	RegResp0     = 0x10 // response (u32)
	RegPrnSts    = 0x24 // present state (u16)
	RegNorIntSts = 0x30 // normal interrupt status (u16); writing the DMA
	// bit acknowledges a boundary pause and resumes the transfer.
	// RegionSize is the MMIO window size.
	RegionSize = 0x60
)

// Present-state bits.
const (
	PrnTransferActive = 0x0100
)

// Interrupt-status bits.
const (
	IntCmdComplete  = 0x0001
	IntXferComplete = 0x0002
	IntDMABoundary  = 0x0008
)

// SD commands (CMD register value >> 8, as the index field).
const (
	CmdGoIdle      = 0
	CmdAllSendCID  = 2
	CmdSendRelAddr = 3
	CmdSelectCard  = 7
	CmdSendIfCond  = 8
	CmdSendCSD     = 9
	CmdSendStatus  = 13
	CmdSetBlockLen = 16
	CmdReadSingle  = 17
	CmdReadMulti   = 18
	CmdWriteSingle = 24
	CmdWriteMulti  = 25
	CmdGenCmd      = 56 // rare
)

// BlockBufSize is the controller's internal block buffer.
const BlockBufSize = 512

// chunkSize is how many bytes one SDMA burst moves before the engine
// re-evaluates the remaining count (the boundary granularity).
const chunkSize = 128

// Options configure the seeded vulnerability.
type Options struct {
	// Fix3409 locks BLKSIZE while a transfer is active (CVE-2021-3409
	// fix).
	Fix3409 bool
}

// Device is the emulated SD host controller.
type Device struct {
	*devutil.Base
}

// New builds the controller.
func New(opts Options) *Device {
	prog := build(opts)
	return &Device{Base: devutil.NewBase(prog, func(st *interp.State, p *ir.Program) {
		devutil.SetFunc(st, p, "irq_cb", "sdhci_irq")
		st.SetIntByName("blksize", 512)
	})}
}

func build(opts Options) *ir.Program {
	b := ir.NewBuilder("sdhci")

	fifo := b.Buf("fifo_buffer", BlockBufSize)
	dataCount := b.Int("data_count", ir.W16)
	spaceLeft := b.Int("space_left", ir.W16)
	irqCb := b.Func("irq_cb")
	blksize := b.Int("blksize", ir.W16, ir.HWRegister())
	blkcnt := b.Int("blkcnt", ir.W16, ir.HWRegister())
	arg := b.Int("arg", ir.W32, ir.HWRegister())
	cmdReg := b.Int("cmd_reg", ir.W16, ir.HWRegister())
	resp0 := b.Int("resp0", ir.W32, ir.HWRegister())
	prnsts := b.Int("prnsts", ir.W16, ir.HWRegister())
	norintsts := b.Int("norintsts", ir.W16, ir.HWRegister())
	sdma := b.Int("sdmasysad", ir.W32, ir.HWRegister())
	rca := b.Int("rca", ir.W16)
	selected := b.Int("selected", ir.W8)
	blocklen := b.Int("blocklen", ir.W16)
	xferWrite := b.Int("xfer_write", ir.W8) // direction of active transfer

	buildMMIO(b, opts, fifo, dataCount, spaceLeft, irqCb, blksize, blkcnt,
		arg, cmdReg, resp0, prnsts, norintsts, sdma, rca, selected, blocklen, xferWrite)
	buildCommands(b, fifo, dataCount, irqCb, blksize, blkcnt, arg, cmdReg,
		resp0, prnsts, norintsts, sdma, rca, selected, blocklen, xferWrite)
	buildTransferEngine(b, fifo, dataCount, spaceLeft, irqCb, blksize,
		blkcnt, prnsts, norintsts, sdma, xferWrite)

	irq := b.Handler("sdhci_irq")
	ib := irq.Block("entry")
	ib.IRQRaise("qemu_set_irq(s->irq, 1)")
	ib.Return("return")

	g := b.Handler("host_gadget")
	gb := g.Block("entry")
	pw := gb.Const(0xFFFF, "0xffff")
	gb.Store(resp0, pw, "/* attacker-controlled execution */")
	gb.Return("return")

	b.Dispatch("sdhci_mmio")
	return devutil.MustBuild(b)
}

func buildMMIO(b *ir.Builder, opts Options, fifo, dataCount, spaceLeft, irqCb, blksize, blkcnt,
	arg, cmdReg, resp0, prnsts, norintsts, sdma, rca, selected, blocklen, xferWrite ir.FieldID) {
	_ = fifo
	_ = dataCount
	_ = spaceLeft
	_ = rca
	_ = selected
	_ = blocklen
	_ = xferWrite

	h := b.Handler("sdhci_mmio")
	e := h.Block("entry").Entry()
	isw := e.IOIsWrite("dir = req->write")
	one := e.Const(1, "1")
	e.Branch(isw, ir.RelEQ, one, ir.W8, false, "if (req->write)", "wr", "rd")

	w := h.Block("wr")
	waddr := w.IOAddr("addr = req->addr")
	w.Switch(waddr, "switch (addr)", "out",
		ir.Case(RegSDMA, "w_sdma"),
		ir.Case(RegBlkSize, "w_blksize"),
		ir.Case(RegBlkCnt, "w_blkcnt"),
		ir.Case(RegArg, "w_arg"),
		ir.Case(RegCmd, "w_cmd"),
		ir.Case(RegNorIntSts, "w_ints"),
	)

	ws := h.Block("w_sdma")
	sv := ws.IOIn(ir.W32, "v = ldl(val)")
	ws.Store(sdma, sv, "s->sdmasysad = v")
	ws.Jump("out", "goto out")

	wb := h.Block("w_blksize")
	bv := wb.IOIn(ir.W16, "v = lduw(val)")
	if opts.Fix3409 {
		// Upstream fix: the register is read-only while a transfer is in
		// flight.
		ps := wb.Load(prnsts, "p = s->prnsts")
		act := wb.Const(PrnTransferActive, "TRANSFER_ACTIVE")
		ab := wb.Arith(ir.ALUAnd, ps, act, ir.W16, false, "p & TRANSFER_ACTIVE")
		z := wb.Const(0, "0")
		wb.Branch(ab, ir.RelNE, z, ir.W16, false,
			"if (TRANSFERRING_DATA(s)) /* CVE-2021-3409 fix */", "w_blksize_locked", "w_blksize_set")
		h.Block("w_blksize_locked").Jump("out", "goto out /* locked */")
		st := h.Block("w_blksize_set")
		st.Store(blksize, bv, "s->blksize = v")
		st.Jump("out", "goto out")
	} else {
		wb.Store(blksize, bv, "s->blksize = v /* writable mid-transfer: CVE-2021-3409 */")
		wb.Jump("out", "goto out")
	}

	wc := h.Block("w_blkcnt")
	cv := wc.IOIn(ir.W16, "v = lduw(val)")
	wc.Store(blkcnt, cv, "s->blkcnt = v")
	wc.Jump("out", "goto out")

	wa := h.Block("w_arg")
	av := wa.IOIn(ir.W32, "v = ldl(val)")
	wa.Store(arg, av, "s->argument = v")
	wa.Jump("out", "goto out")

	wm := h.Block("w_cmd")
	wm.Call("sdhci_send_command", "sdhci_send_command(s)")
	wm.Jump("out", "goto out")

	wi := h.Block("w_ints")
	iv := wi.IOIn(ir.W16, "v = lduw(val)")
	cur := wi.Load(norintsts, "c = s->norintsts")
	inv := wi.Const(0xFFFF, "0xffff")
	niv := wi.Arith(ir.ALUXor, iv, inv, ir.W16, false, "~v")
	c2 := wi.Arith(ir.ALUAnd, cur, niv, ir.W16, false, "c & ~v")
	wi.Store(norintsts, c2, "s->norintsts &= ~v /* write-1-to-clear */")
	dma := wi.Const(IntDMABoundary, "INT_DMA")
	db := wi.Arith(ir.ALUAnd, iv, dma, ir.W16, false, "v & INT_DMA")
	z2 := wi.Const(0, "0")
	wi.Branch(db, ir.RelNE, z2, ir.W16, false, "if (v & INT_DMA)", "w_resume", "out")
	wres := h.Block("w_resume")
	wres.Call("sdhci_sdma_transfer", "sdhci_sdma_transfer_multi_blocks(s)")
	wres.Jump("out", "goto out")

	r := h.Block("rd")
	raddr := r.IOAddr("addr = req->addr")
	r.Switch(raddr, "switch (addr)", "r_zero",
		ir.Case(RegBlkSize, "r_blksize"),
		ir.Case(RegBlkCnt, "r_blkcnt"),
		ir.Case(RegResp0, "r_resp0"),
		ir.Case(RegPrnSts, "r_prnsts"),
		ir.Case(RegNorIntSts, "r_ints"),
	)
	emit := func(label string, f ir.FieldID, w ir.Width, stmt string) {
		blk := h.Block(label)
		v := blk.Load(f, stmt)
		blk.IOOut(v, w, "return v")
		blk.Jump("out", "goto out")
	}
	emit("r_blksize", blksize, ir.W16, "v = s->blksize")
	emit("r_blkcnt", blkcnt, ir.W16, "v = s->blkcnt")
	emit("r_resp0", resp0, ir.W32, "v = s->resp0")
	emit("r_prnsts", prnsts, ir.W16, "v = s->prnsts")
	emit("r_ints", norintsts, ir.W16, "v = s->norintsts")
	rz := h.Block("r_zero")
	zv := rz.Const(0, "0")
	rz.IOOut(zv, ir.W32, "return 0")
	rz.Jump("out", "goto out")

	h.Block("out").Exit().Halt("return")
	_ = irqCb
	_ = cmdReg
}
