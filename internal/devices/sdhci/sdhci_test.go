package sdhci_test

import (
	"errors"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/sdhci"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
	"sedspec/internal/workload"
)

func setup(t *testing.T, opts sdhci.Options) (*sedspec.Machine, *sedspec.Attached, *sdhci.Guest) {
	t.Helper()
	m := sedspec.NewMachine(machine.WithMemory(1 << 20))
	dev := sdhci.New(opts)
	att := m.Attach(dev, machine.WithMMIO(0, sdhci.RegionSize))
	return m, att, sdhci.NewGuest(sedspec.NewDriver(att))
}

func train(d *sedspec.Driver) error {
	return workload.TrainSDHCI(d, workload.TrainConfig{Light: true})
}

func TestCardBringUp(t *testing.T) {
	_, _, g := setup(t, sdhci.Options{})
	if err := g.InitCard(); err != nil {
		t.Fatalf("InitCard: %v", err)
	}
	st, err := g.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st != 1<<9 {
		t.Errorf("status = %#x, want selected-state bit", st)
	}
}

func TestMultiBlockTransferMovesData(t *testing.T) {
	m, _, g := setup(t, sdhci.Options{})
	if err := g.InitCard(); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 512)
	for i := range want {
		want[i] = byte(i * 11)
	}
	if err := m.Mem.Write(uint64(g.DMABuf), want); err != nil {
		t.Fatal(err)
	}
	// Write one block in (guest -> fifo), then read it back out.
	if err := g.Transfer(true, 512, 1); err != nil {
		t.Fatalf("write transfer: %v", err)
	}
	g.DMABuf = 0x5_0000
	if err := g.Transfer(false, 512, 1); err != nil {
		t.Fatalf("read transfer: %v", err)
	}
	got := make([]byte, 512)
	if err := m.Mem.Read(0x5_0000, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestTransferCompletionInterrupt(t *testing.T) {
	m, _, g := setup(t, sdhci.Options{})
	if err := g.InitCard(); err != nil {
		t.Fatal(err)
	}
	if err := g.Transfer(false, 512, 2); err != nil {
		t.Fatal(err)
	}
	if !m.IRQ.Level(0) {
		t.Error("transfer should raise the interrupt line")
	}
}

// cve3409 starts a multi-block write, then shrinks BLKSIZE mid-transfer so
// the remaining-bytes expression underflows.
func cve3409(g *sdhci.Guest) error {
	if err := g.Write32(sdhci.RegSDMA, g.DMABuf); err != nil {
		return err
	}
	if err := g.Write16(sdhci.RegBlkSize, 512); err != nil {
		return err
	}
	if err := g.Write16(sdhci.RegBlkCnt, 4); err != nil {
		return err
	}
	if err := g.Command(sdhci.CmdWriteMulti, 0); err != nil {
		return err
	}
	// One burst has moved (data_count = 128). Shrink the block size.
	if err := g.Write16(sdhci.RegBlkSize, 64); err != nil {
		return err
	}
	return g.ResumeDMA()
}

func TestCVE3409UnprotectedCorrupts(t *testing.T) {
	_, att, g := setup(t, sdhci.Options{})
	if err := g.InitCard(); err != nil {
		t.Fatal(err)
	}
	if err := cve3409(g); err != nil {
		t.Fatalf("exploit errored early: %v", err)
	}
	// The underflowed remainder was latched: space_left is huge.
	if v, _ := att.Dev().State().IntByName("space_left"); v < 0xFF00 {
		t.Errorf("space_left = %#x, want underflowed value", v)
	}
	// Driving more bursts walks the copy past the FIFO: the burst at
	// offset 512 clobbers the rest of the SDHCIState structure and
	// finally escapes it — the crash the CVE advisory describes.
	var crashed bool
	for i := 0; i < 6 && !crashed; i++ {
		res, err := att.DispatchDirect(interp.NewWrite(interp.SpaceMMIO, sdhci.RegNorIntSts,
			[]byte{sdhci.IntDMABoundary, 0}))
		if err != nil {
			t.Fatal(err)
		}
		if res.Fault != nil {
			if res.Fault.Kind != interp.FaultArenaEscape {
				t.Fatalf("fault = %v, want arena-escape", res.Fault)
			}
			crashed = true
		}
	}
	if !crashed {
		t.Error("exploit should have crashed the unprotected device")
	}
}

func TestCVE3409Fix(t *testing.T) {
	_, att, g := setup(t, sdhci.Options{Fix3409: true})
	if err := g.InitCard(); err != nil {
		t.Fatal(err)
	}
	if err := cve3409(g); err != nil {
		t.Fatalf("patched device errored: %v", err)
	}
	// The mid-transfer BLKSIZE write was ignored.
	if v, _ := att.Dev().State().IntByName("blksize"); v != 512 {
		t.Errorf("blksize = %d, want 512 (locked)", v)
	}
	if v, _ := att.Dev().State().IntByName("space_left"); v >= 0xFF00 {
		t.Errorf("space_left = %#x underflowed despite fix", v)
	}
}

func learn(t *testing.T, att *sedspec.Attached) *sedspec.Spec {
	t.Helper()
	spec, err := sedspec.Learn(att, train)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	return spec
}

func TestBenignPassesUnderProtection(t *testing.T) {
	m, att, _ := setup(t, sdhci.Options{})
	spec := learn(t, att)
	chk := sedspec.Protect(att, spec)
	if err := train(sedspec.NewDriver(att)); err != nil {
		t.Fatalf("benign traffic blocked: %v", err)
	}
	if m.Halted() {
		t.Fatal("halted on benign traffic")
	}
	st := chk.Stats()
	if st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies != 0 {
		t.Fatalf("anomalies on benign traffic: %+v", st)
	}
}

func TestCVE3409BlockedByParameterCheck(t *testing.T) {
	m, att, g := setup(t, sdhci.Options{})
	spec := learn(t, att)
	sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyParameter))

	if err := g.InitCard(); err != nil {
		t.Fatal(err)
	}
	err := cve3409(g)
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) {
		t.Fatalf("want blocking anomaly, got %v", err)
	}
	if anom.Strategy != checker.StrategyParameter {
		t.Errorf("strategy = %v, want parameter-check (unsigned underflow)", anom.Strategy)
	}
	if !m.Halted() {
		t.Error("machine should halt")
	}
	// The device never latched the underflow.
	if v, _ := att.Dev().State().IntByName("space_left"); v >= 0xFF00 {
		t.Error("underflow reached the device despite protection")
	}
}

func TestRareCommandFlagged(t *testing.T) {
	_, att, g := setup(t, sdhci.Options{})
	spec := learn(t, att)
	sedspec.Protect(att, spec)
	err := g.GenCmd()
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyConditionalJump {
		t.Fatalf("want conditional-jump anomaly for CMD56, got %v", err)
	}
}
