package sdhci

import (
	"encoding/binary"
	"fmt"

	"sedspec/internal/devices/devutil"
)

// Guest drives the controller like an SD host driver: card bring-up
// (CMD0/2/3/7), transfer parameter programming, and SDMA multi-block
// transfers resumed at DMA boundaries.
type Guest struct {
	p devutil.Port
	// Base is the MMIO base the device was attached at.
	Base uint64
	// DMABuf is the guest address used for transfers.
	DMABuf uint32
}

// NewGuest wraps a port driver.
func NewGuest(p devutil.Port) *Guest { return &Guest{p: p, DMABuf: 0x4_0000} }

// Write16 writes a 16-bit register.
func (g *Guest) Write16(off uint64, v uint16) error {
	b := make([]byte, 2)
	binary.LittleEndian.PutUint16(b, v)
	_, err := g.p.MMIOWrite(g.Base+off, b)
	return err
}

// Write32 writes a 32-bit register.
func (g *Guest) Write32(off uint64, v uint32) error {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	_, err := g.p.MMIOWrite(g.Base+off, b)
	return err
}

// Read16 reads a 16-bit register.
func (g *Guest) Read16(off uint64) (uint16, error) {
	out, _, err := g.p.MMIORead(g.Base + off)
	if err != nil {
		return 0, err
	}
	if len(out) < 2 {
		return 0, fmt.Errorf("sdhci: short read at %#x", off)
	}
	return binary.LittleEndian.Uint16(out), nil
}

// Read32 reads a 32-bit register.
func (g *Guest) Read32(off uint64) (uint32, error) {
	out, _, err := g.p.MMIORead(g.Base + off)
	if err != nil {
		return 0, err
	}
	if len(out) < 4 {
		return 0, fmt.Errorf("sdhci: short read at %#x", off)
	}
	return binary.LittleEndian.Uint32(out), nil
}

// Command issues an SD command with an argument.
func (g *Guest) Command(index uint8, arg uint32) error {
	if err := g.Write32(RegArg, arg); err != nil {
		return err
	}
	return g.Write16(RegCmd, uint16(index)<<8)
}

// InitCard runs the bring-up sequence.
func (g *Guest) InitCard() error {
	for _, c := range []struct {
		idx uint8
		arg uint32
	}{
		{CmdGoIdle, 0},
		{CmdSendIfCond, 0x1AA},
		{CmdAllSendCID, 0},
		{CmdSendRelAddr, 0},
		{CmdSelectCard, 0x45670000},
		{CmdSendCSD, 0x45670000},
	} {
		if err := g.Command(c.idx, c.arg); err != nil {
			return err
		}
		if err := g.AckAll(); err != nil {
			return err
		}
	}
	return nil
}

// AckAll clears non-DMA interrupt status bits.
func (g *Guest) AckAll() error {
	s, err := g.Read16(RegNorIntSts)
	if err != nil {
		return err
	}
	return g.Write16(RegNorIntSts, s&^uint16(IntDMABoundary))
}

// ResumeDMA acknowledges a DMA boundary, resuming the transfer engine.
func (g *Guest) ResumeDMA() error {
	return g.Write16(RegNorIntSts, IntDMABoundary)
}

// Transfer runs a multi-block transfer of blocks x blksize bytes,
// resuming boundaries until completion. write selects the direction.
func (g *Guest) Transfer(write bool, blksize, blocks uint16) error {
	if err := g.Write32(RegSDMA, g.DMABuf); err != nil {
		return err
	}
	if err := g.Write16(RegBlkSize, blksize); err != nil {
		return err
	}
	if err := g.Write16(RegBlkCnt, blocks); err != nil {
		return err
	}
	cmd := uint8(CmdReadMulti)
	if write {
		cmd = CmdWriteMulti
	}
	if err := g.Command(cmd, 0); err != nil {
		return err
	}
	// Pump boundaries until the transfer completes.
	for i := 0; i < 4*int(blocks)*int(blksize)/chunkSize+16; i++ {
		s, err := g.Read16(RegNorIntSts)
		if err != nil {
			return err
		}
		if s&IntXferComplete != 0 {
			return g.AckAll()
		}
		if s&IntDMABoundary != 0 {
			if err := g.ResumeDMA(); err != nil {
				return err
			}
			continue
		}
		return fmt.Errorf("sdhci: transfer stalled (status %#x)", s)
	}
	return fmt.Errorf("sdhci: transfer did not complete")
}

// SingleBlock runs CMD17/CMD24.
func (g *Guest) SingleBlock(write bool) error {
	if err := g.Write32(RegSDMA, g.DMABuf); err != nil {
		return err
	}
	cmd := uint8(CmdReadSingle)
	if write {
		cmd = CmdWriteSingle
	}
	if err := g.Command(cmd, 0); err != nil {
		return err
	}
	return g.AckAll()
}

// Status issues CMD13.
func (g *Guest) Status() (uint32, error) {
	if err := g.Command(CmdSendStatus, 0x45670000); err != nil {
		return 0, err
	}
	if err := g.AckAll(); err != nil {
		return 0, err
	}
	return g.Read32(RegResp0)
}

// SetBlockLen issues CMD16.
func (g *Guest) SetBlockLen(n uint32) error {
	if err := g.Command(CmdSetBlockLen, n); err != nil {
		return err
	}
	return g.AckAll()
}

// GenCmd issues the rare CMD56.
func (g *Guest) GenCmd() error {
	if err := g.Command(CmdGenCmd, 0); err != nil {
		return err
	}
	return g.AckAll()
}
