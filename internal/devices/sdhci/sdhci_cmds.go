package sdhci

import "sedspec/internal/ir"

// buildCommands emits the SD command dispatch: the CMD register write
// carries the command index in its high byte; the switch is the device's
// command-decision point.
func buildCommands(b *ir.Builder, fifo, dataCount, irqCb, blksize, blkcnt, arg, cmdReg,
	resp0, prnsts, norintsts, sdma, rca, selected, blocklen, xferWrite ir.FieldID) {

	h := b.Handler("sdhci_send_command")
	e := h.Block("entry").CmdDecision()
	v := e.IOIn(ir.W16, "v = lduw(val)")
	e.Store(cmdReg, v, "s->cmd_reg = v")
	eight := e.Const(8, "8")
	idx := e.Arith(ir.ALUShr, v, eight, ir.W16, false, "cmd = v >> 8")
	e.Switch(idx, "switch (cmd)", "c_illegal",
		ir.Case(CmdGoIdle, "c_goidle"),
		ir.Case(CmdAllSendCID, "c_cid"),
		ir.Case(CmdSendRelAddr, "c_rca"),
		ir.Case(CmdSelectCard, "c_select"),
		ir.Case(CmdSendIfCond, "c_ifcond"),
		ir.Case(CmdSendCSD, "c_csd"),
		ir.Case(CmdSendStatus, "c_status"),
		ir.Case(CmdSetBlockLen, "c_blocklen"),
		ir.Case(CmdReadSingle, "c_read1"),
		ir.Case(CmdReadMulti, "c_readn"),
		ir.Case(CmdWriteSingle, "c_write1"),
		ir.Case(CmdWriteMulti, "c_writen"),
		ir.Case(CmdGenCmd, "c_gen"),
	)

	// done stamps command completion: response, status bit, interrupt.
	done := func(blk *ir.BlockBuilder, resp uint64) {
		rv := blk.Const(resp, "resp")
		blk.Store(resp0, rv, "s->resp0 = resp")
		cur := blk.Load(norintsts, "c = s->norintsts")
		cc := blk.Const(IntCmdComplete, "INT_CMD_COMPLETE")
		c2 := blk.Arith(ir.ALUOr, cur, cc, ir.W16, false, "c | INT_CMD_COMPLETE")
		blk.Store(norintsts, c2, "s->norintsts |= INT_CMD_COMPLETE")
		blk.CallPtr(irqCb, "sdhci_update_irq(s)")
	}

	gi := h.Block("c_goidle").CmdEnd()
	z := gi.Const(0, "0")
	gi.Store(dataCount, z, "s->data_count = 0")
	gi.Store(blkcnt, z, "s->blkcnt = 0")
	gi.Store(prnsts, z, "s->prnsts = 0")
	gi.Store(selected, z, "deselect")
	done(gi, 0)
	gi.Return("return")

	ci := h.Block("c_cid").CmdEnd()
	done(ci, 0xDEAD_CAFE)
	ci.Return("return")

	cr := h.Block("c_rca").CmdEnd()
	r := cr.Const(0x4567, "0x4567")
	cr.Store(rca, r, "s->rca = 0x4567")
	done(cr, 0x4567_0000)
	cr.Return("return")

	cs := h.Block("c_select").CmdEnd()
	one := cs.Const(1, "1")
	cs.Store(selected, one, "s->selected = 1")
	done(cs, 0x0700)
	cs.Return("return")

	cf := h.Block("c_ifcond").CmdEnd()
	a := cf.Load(arg, "a = s->argument")
	mask := cf.Const(0xFFF, "0xfff")
	echo := cf.Arith(ir.ALUAnd, a, mask, ir.W32, false, "a & 0xfff")
	cf.Store(resp0, echo, "s->resp0 = a & 0xfff")
	cur := cf.Load(norintsts, "c")
	cc := cf.Const(IntCmdComplete, "INT_CMD_COMPLETE")
	c2 := cf.Arith(ir.ALUOr, cur, cc, ir.W16, false, "c | INT_CMD_COMPLETE")
	cf.Store(norintsts, c2, "s->norintsts |= INT_CMD_COMPLETE")
	cf.CallPtr(irqCb, "sdhci_update_irq(s)")
	cf.Return("return")

	cd := h.Block("c_csd").CmdEnd()
	done(cd, 0x0123_4567)
	cd.Return("return")

	ct := h.Block("c_status").CmdEnd()
	sel := ct.Load(selected, "sel = s->selected")
	nine := ct.Const(9, "9")
	stv := ct.Arith(ir.ALUShl, sel, nine, ir.W32, false, "sel << 9")
	ct.Store(resp0, stv, "s->resp0 = state")
	cur2 := ct.Load(norintsts, "c")
	cc2 := ct.Const(IntCmdComplete, "INT_CMD_COMPLETE")
	c3 := ct.Arith(ir.ALUOr, cur2, cc2, ir.W16, false, "c | INT_CMD_COMPLETE")
	ct.Store(norintsts, c3, "s->norintsts |= INT_CMD_COMPLETE")
	ct.CallPtr(irqCb, "sdhci_update_irq(s)")
	ct.Return("return")

	cb := h.Block("c_blocklen").CmdEnd()
	a2 := cb.Load(arg, "a = s->argument")
	cb.Store(blocklen, a2, "s->blocklen = a")
	done(cb, 0x0900)
	cb.Return("return")

	// Single-block transfers complete synchronously.
	c1 := h.Block("c_read1").CmdEnd()
	addr := c1.Load(sdma, "addr = s->sdmasysad")
	bs := c1.Load(blksize, "n = s->blksize")
	zi := c1.Const(0, "0")
	c1.DMAFromBuf(fifo, zi, addr, bs, false, "dma_memory_write(addr, s->fifo_buffer, n)")
	c1.Work(bs, "sd_read_block(s)")
	done(c1, 0x0900)
	c1.Return("return")

	w1 := h.Block("c_write1").CmdEnd()
	addr2 := w1.Load(sdma, "addr = s->sdmasysad")
	bs2 := w1.Load(blksize, "n = s->blksize")
	zi2 := w1.Const(0, "0")
	w1.DMAToBuf(fifo, zi2, addr2, bs2, false, "dma_memory_read(addr, s->fifo_buffer, n)")
	w1.Work(bs2, "sd_write_block(s)")
	done(w1, 0x0900)
	w1.Return("return")

	// Multi-block transfers arm the incremental engine and run the first
	// burst; the guest resumes at each DMA boundary.
	startMulti := func(label string, write uint64) {
		blk := h.Block(label)
		act := blk.Const(PrnTransferActive, "TRANSFER_ACTIVE")
		blk.Store(prnsts, act, "s->prnsts |= TRANSFER_ACTIVE")
		wv := blk.Const(write, "direction")
		blk.Store(xferWrite, wv, "s->xfer_write = dir")
		zz := blk.Const(0, "0")
		blk.Store(dataCount, zz, "s->data_count = 0")
		done(blk, 0x0900)
		blk.Call("sdhci_sdma_transfer", "sdhci_sdma_transfer_multi_blocks(s)")
		blk.Return("return")
	}
	startMulti("c_readn", 0)
	startMulti("c_writen", 1)

	cg := h.Block("c_gen").CmdEnd()
	done(cg, 0x0900)
	cg.Return("return")

	il := h.Block("c_illegal").CmdEnd()
	bad := il.Const(0xFFFF_FFFF, "ILLEGAL")
	il.Store(resp0, bad, "s->resp0 = ILLEGAL")
	il.Return("return")
}

// buildTransferEngine emits the incremental SDMA engine: one chunk per
// invocation, re-evaluating the remaining count. The (blksize -
// data_count) expression is the CVE-2021-3409 underflow site.
func buildTransferEngine(b *ir.Builder, fifo, dataCount, spaceLeft, irqCb, blksize,
	blkcnt, prnsts, norintsts, sdma, xferWrite ir.FieldID) {

	h := b.Handler("sdhci_sdma_transfer")
	e := h.Block("entry")
	ps := e.Load(prnsts, "p = s->prnsts")
	act := e.Const(PrnTransferActive, "TRANSFER_ACTIVE")
	ab := e.Arith(ir.ALUAnd, ps, act, ir.W16, false, "p & TRANSFER_ACTIVE")
	z := e.Const(0, "0")
	e.Branch(ab, ir.RelEQ, z, ir.W16, false, "if (!TRANSFERRING_DATA(s))", "idle", "step")
	h.Block("idle").Return("return")

	st := h.Block("step")
	bs := st.Load(blksize, "blk_size = s->blksize")
	dc := st.Load(dataCount, "count = s->data_count")
	rem := st.Arith(ir.ALUSub, bs, dc, ir.W16, false,
		"n = blk_size - s->data_count /* CVE-2021-3409 underflow */")
	st.Store(spaceLeft, rem, "s->space_left = n")
	chunk := st.Const(chunkSize, "boundary_chunk")
	st.Branch(rem, ir.RelLE, chunk, ir.W16, false, "if (n <= boundary_chunk)", "finish_block", "burst")

	// Partial burst: move chunkSize bytes and pause at the boundary.
	bu := h.Block("burst")
	addr := bu.Load(sdma, "addr = s->sdmasysad")
	dc2 := bu.Load(dataCount, "count")
	ch := bu.Const(chunkSize, "chunk")
	dir := bu.Load(xferWrite, "dir = s->xfer_write")
	one := bu.Const(1, "1")
	bu.Branch(dir, ir.RelEQ, one, ir.W8, false, "if (write)", "burst_w", "burst_r")
	bw := h.Block("burst_w")
	bw.DMAToBuf(fifo, dc2, addr, ch, false, "dma_memory_read(addr, fifo + count, chunk)")
	bw.Jump("burst_done", "goto done")
	br := h.Block("burst_r")
	br.DMAFromBuf(fifo, dc2, addr, ch, false, "dma_memory_write(addr, fifo + count, chunk)")
	br.Jump("burst_done", "goto done")
	bd := h.Block("burst_done")
	bd.Work(ch, "sd transfer chunk")
	a2 := bd.Arith(ir.ALUAdd, addr, ch, ir.W32, false, "addr + chunk")
	bd.Store(sdma, a2, "s->sdmasysad = addr + chunk")
	nc := bd.Arith(ir.ALUAdd, dc2, ch, ir.W16, false, "count + chunk")
	bd.Store(dataCount, nc, "s->data_count = count + chunk")
	cur := bd.Load(norintsts, "c")
	dmab := bd.Const(IntDMABoundary, "INT_DMA")
	c2 := bd.Arith(ir.ALUOr, cur, dmab, ir.W16, false, "c | INT_DMA")
	bd.Store(norintsts, c2, "s->norintsts |= INT_DMA /* pause at boundary */")
	bd.CallPtr(irqCb, "sdhci_update_irq(s)")
	bd.Return("return")

	// Final burst of the block: move the remainder and close the block.
	fb := h.Block("finish_block")
	addr3 := fb.Load(sdma, "addr = s->sdmasysad")
	dc3 := fb.Load(dataCount, "count")
	rem2 := fb.Load(spaceLeft, "n = s->space_left")
	dir2 := fb.Load(xferWrite, "dir")
	one2 := fb.Const(1, "1")
	fb.Branch(dir2, ir.RelEQ, one2, ir.W8, false, "if (write)", "fin_w", "fin_r")
	fw := h.Block("fin_w")
	fw.DMAToBuf(fifo, dc3, addr3, rem2, false, "dma_memory_read(addr, fifo + count, n)")
	fw.Jump("fin_done", "goto done")
	fr := h.Block("fin_r")
	fr.DMAFromBuf(fifo, dc3, addr3, rem2, false, "dma_memory_write(addr, fifo + count, n)")
	fr.Jump("fin_done", "goto done")
	fd := h.Block("fin_done")
	fd.Work(rem2, "sd transfer tail")
	a4 := fd.Arith(ir.ALUAdd, addr3, rem2, ir.W32, false, "addr + n")
	fd.Store(sdma, a4, "s->sdmasysad = addr + n")
	zz := fd.Const(0, "0")
	fd.Store(dataCount, zz, "s->data_count = 0")
	bc := fd.Load(blkcnt, "blocks = s->blkcnt")
	one3 := fd.Const(1, "1")
	bc2 := fd.Arith(ir.ALUSub, bc, one3, ir.W16, false, "blocks - 1")
	fd.Store(blkcnt, bc2, "s->blkcnt = blocks - 1")
	fd.Branch(bc2, ir.RelEQ, zz, ir.W16, false, "if (s->blkcnt == 0)", "complete", "pause")

	// More blocks: pause at the block boundary, guest resumes.
	pa := h.Block("pause")
	cur2 := pa.Load(norintsts, "c")
	dmab2 := pa.Const(IntDMABoundary, "INT_DMA")
	c3 := pa.Arith(ir.ALUOr, cur2, dmab2, ir.W16, false, "c | INT_DMA")
	pa.Store(norintsts, c3, "s->norintsts |= INT_DMA")
	pa.CallPtr(irqCb, "sdhci_update_irq(s)")
	pa.Return("return")

	cm := h.Block("complete").CmdEnd()
	zc := cm.Const(0, "0")
	cm.Store(prnsts, zc, "s->prnsts &= ~TRANSFER_ACTIVE")
	cur3 := cm.Load(norintsts, "c")
	xc := cm.Const(IntXferComplete, "INT_XFER_COMPLETE")
	c4 := cm.Arith(ir.ALUOr, cur3, xc, ir.W16, false, "c | INT_XFER_COMPLETE")
	cm.Store(norintsts, c4, "s->norintsts |= INT_XFER_COMPLETE")
	cm.CallPtr(irqCb, "sdhci_update_irq(s)")
	cm.Return("return")
}
