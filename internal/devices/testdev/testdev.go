// Package testdev implements a small synthetic storage-style controller
// exercising every SEDSpec-relevant construct in a controlled way: command
// decision and end blocks, a FIFO with an index parameter and a seeded
// Venom-style bug, a function-pointer completion callback, an
// environment-dependent branch (sync point), and a rarely used diagnostic
// command for false-positive studies. The five real device models follow
// the same pattern at larger scale; tests use this one for precise
// assertions.
package testdev

import (
	"sedspec/internal/devices/devutil"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// Port layout.
const (
	PortCmd  = 0 // command byte, then command-specific payload
	PortData = 1 // data byte pushed into the FIFO
	PortEnv  = 2 // environment-dependent status refresh
	// PortCount is the port window size.
	PortCount = 3
)

// Commands.
const (
	CmdReset      = 0x01
	CmdWriteBegin = 0x02 // payload: transfer length byte
	CmdRead       = 0x03
	CmdStatus     = 0x04
	CmdDiag       = 0x7F // rare diagnostic command
)

// FIFO capacity in bytes.
const FifoSize = 16

// Options configure seeded vulnerabilities.
type Options struct {
	// FixVenom installs the bounds check the Venom-style bug omits: with
	// it, the data port stops accepting bytes at the FIFO's capacity.
	FixVenom bool
}

// Device is the test controller.
type Device struct {
	*devutil.Base
}

// New builds the device. Without options the Venom-style bug is present,
// matching an unpatched QEMU.
func New(opts Options) *Device {
	prog := build(opts)
	return &Device{Base: devutil.NewBase(prog, func(st *interp.State, p *ir.Program) {
		devutil.SetFunc(st, p, "irq_cb", "testdev_complete")
	})}
}

func build(opts Options) *ir.Program {
	b := ir.NewBuilder("testdev")

	// Control structure. Layout order matters: a FIFO overflow walks
	// through data_pos/data_len and then clobbers irq_cb, enabling the
	// control-flow-hijack exploit path.
	fifo := b.Buf("fifo", FifoSize)
	dataPos := b.Int("data_pos", ir.W16)
	dataLen := b.Int("data_len", ir.W16)
	irqCb := b.Func("irq_cb")
	status := b.Int("status", ir.W8, ir.HWRegister())
	cmdReg := b.Int("cmd", ir.W8, ir.HWRegister())

	// --- dispatch: route by port ---
	h := b.Handler("testdev_ioport_write")
	e := h.Block("entry").Entry()
	addr := e.IOAddr("addr = req->addr")
	e.Switch(addr, "switch (addr)", "out",
		ir.Case(PortCmd, "cmd"),
		ir.Case(PortData, "data"),
		ir.Case(PortEnv, "envp"),
	)

	// --- command port: command decision ---
	c := h.Block("cmd").CmdDecision()
	cv := c.IOIn(ir.W8, "cmd = ioread8()")
	c.Store(cmdReg, cv, "s->cmd = cmd")
	cv2 := c.Load(cmdReg, "cmd = s->cmd")
	c.Switch(cv2, "switch (s->cmd)", "badcmd",
		ir.Case(CmdReset, "c_reset"),
		ir.Case(CmdWriteBegin, "c_wbegin"),
		ir.Case(CmdRead, "c_read"),
		ir.Case(CmdStatus, "c_status"),
		ir.Case(CmdDiag, "c_diag"),
	)

	r := h.Block("c_reset").CmdEnd()
	z := r.Const(0, "0")
	r.Store(dataPos, z, "s->data_pos = 0")
	r.Store(dataLen, z, "s->data_len = 0")
	r.Store(status, z, "s->status = 0")
	r.Jump("out", "goto out")

	wb := h.Block("c_wbegin").CmdEnd()
	ln := wb.IOIn(ir.W8, "len = ioread8()")
	wb.Store(dataLen, ln, "s->data_len = len")
	zz := wb.Const(0, "0")
	wb.Store(dataPos, zz, "s->data_pos = 0")
	busy := wb.Const(0x10, "STATUS_BUSY")
	wb.Store(status, busy, "s->status = STATUS_BUSY")
	wb.Jump("out", "goto out")

	rd := h.Block("c_read")
	rl := rd.Load(dataLen, "n = s->data_len")
	rd.DMAFromBuf(fifo, rd.Const(0, "0"), rd.Const(0x1000, "dst"), rl, false,
		"copy_to_guest(dst, s->fifo, n)")
	rd.Work(rl, "transfer_medium(n)")
	rd.Jump("c_read_done", "goto done")
	rdd := h.Block("c_read_done").CmdEnd()
	done := rdd.Const(0x01, "STATUS_DONE")
	rdd.Store(status, done, "s->status = STATUS_DONE")
	rdd.CallPtr(irqCb, "s->irq_cb()")
	rdd.Jump("out", "goto out")

	st := h.Block("c_status").CmdEnd()
	sv := st.Load(status, "v = s->status")
	st.IOOut(sv, ir.W8, "iowrite8(v)")
	st.Jump("out", "goto out")

	dg := h.Block("c_diag").CmdEnd()
	diag := dg.Const(0xD1, "DIAG_MAGIC")
	dg.IOOut(diag, ir.W8, "iowrite8(DIAG_MAGIC)")
	dg.Jump("out", "goto out")

	bad := h.Block("badcmd").CmdEnd()
	errv := bad.Const(0x80, "STATUS_ERR")
	bad.Store(status, errv, "s->status = STATUS_ERR")
	bad.Jump("out", "goto out")

	// --- data port: the Venom-style FIFO path ---
	d := h.Block("data")
	v := d.IOIn(ir.W8, "v = ioread8()")
	p := d.Load(dataPos, "p = s->data_pos")
	if opts.FixVenom {
		lim := d.Const(FifoSize, "FIFO_SIZE")
		d.Branch(p, ir.RelGE, lim, ir.W16, false,
			"if (p >= FIFO_SIZE) /* patched */", "out", "data_store")
	} else {
		// Unpatched: no capacity check; p grows without bound
		// (CVE-2015-3456 shape).
		d.Jump("data_store", "/* no bounds check */")
	}
	ds := h.Block("data_store")
	ds.BufStore(fifo, p, v, ir.W16, false, "s->fifo[p] = v")
	one := ds.Const(1, "1")
	p2 := ds.Arith(ir.ALUAdd, p, one, ir.W16, false, "p + 1")
	ds.Store(dataPos, p2, "s->data_pos = p + 1")
	ds.Jump("out", "goto out")

	// --- env port: branch on link status (sync point) ---
	ev := h.Block("envp")
	link := ev.EnvRead(ir.EnvLink, "up = backend_link_status()")
	onev := ev.Const(1, "1")
	ev.Branch(link, ir.RelEQ, onev, ir.W8, false, "if (up)", "env_up", "env_down")
	eu := h.Block("env_up")
	s1 := eu.Load(status, "v = s->status")
	bit := eu.Const(0x40, "STATUS_LINK")
	s2 := eu.Arith(ir.ALUOr, s1, bit, ir.W8, false, "v | STATUS_LINK")
	eu.Store(status, s2, "s->status = v")
	eu.Jump("out", "goto out")
	ed := h.Block("env_down")
	s3 := ed.Load(status, "v = s->status")
	m := ed.Const(0xBF, "~STATUS_LINK")
	s4 := ed.Arith(ir.ALUAnd, s3, m, ir.W8, false, "v & ~STATUS_LINK")
	ed.Store(status, s4, "s->status = v")
	ed.Jump("out", "goto out")

	h.Block("out").Exit().Halt("return")

	// Legitimate completion callback.
	cb := b.Handler("testdev_complete")
	cbb := cb.Block("body")
	cbb.IRQRaise("qemu_irq_raise(s->irq)")
	cbb.Return("return")

	// A host function an attacker would pivot to: standing in for
	// arbitrary code execution after a control-flow hijack.
	gd := b.Handler("host_gadget")
	gdb := gd.Block("body")
	pw := gdb.Const(0xFF, "0xff")
	gdb.Store(status, pw, "/* attacker-controlled execution */")
	gdb.Return("return")

	b.Dispatch("testdev_ioport_write")
	return devutil.MustBuild(b)
}
