package pcnet

import (
	"encoding/binary"

	"sedspec/internal/interp"
)

// TransmitBurst queues one single-chunk frame per descriptor slot and
// delivers the whole doorbell sequence — one RAP/RDP TDMD pair per frame
// — through machine.DispatchBatch, so an enforcement interposer that
// understands batches checks the entire ring sweep in one call instead
// of round by round. The request stream is exactly the one N Transmit
// calls would issue; only its delivery is batched. Frames beyond the
// ring size are sent in ring-sized groups (descriptors for a group must
// not overwrite slots the device has not consumed yet).
func (g *Guest) TransmitBurst(frames ...[]byte) ([]*interp.Result, error) {
	var all []*interp.Result
	for len(frames) > 0 {
		n := len(frames)
		if n > int(g.TxLen) {
			n = int(g.TxLen)
		}
		res, err := g.transmitGroup(frames[:n])
		all = append(all, res...)
		if err != nil {
			return all, err
		}
		frames = frames[n:]
	}
	return all, nil
}

// transmitGroup writes up to TxLen descriptor chains and batches their
// doorbells. The first TDMD transmits every owned descriptor; the
// remaining doorbells walk the trained empty-ring path — identical
// behaviour to issuing the same doorbells per round.
func (g *Guest) transmitGroup(frames [][]byte) ([]*interp.Result, error) {
	mem := g.p.Machine().Mem
	reqs := make([]*interp.Request, 0, 2*len(frames))
	for i, frame := range frames {
		slot := (g.txSlot + uint16(i)) % g.TxLen
		addr := uint64(guestTxBuf) + uint64(slot)*0x800
		if err := mem.Write(addr, frame); err != nil {
			return nil, err
		}
		desc := make([]byte, 16)
		binary.LittleEndian.PutUint32(desc[DescAddr:], uint32(addr))
		binary.LittleEndian.PutUint32(desc[DescFlags:], DescOWN|DescENP)
		binary.LittleEndian.PutUint32(desc[DescLen:], uint32(len(frame)))
		if err := mem.Write(guestTxRing+uint64(slot)*16, desc); err != nil {
			return nil, err
		}
		reqs = append(reqs,
			interp.NewWrite(interp.SpacePIO, PortRAP, le16(0)),
			interp.NewWrite(interp.SpacePIO, PortRDP, le16(CSR0TDMD)))
	}
	g.txSlot = (g.txSlot + uint16(len(frames))) % g.TxLen
	return g.p.Attached().DispatchBatch(reqs)
}
