package pcnet_test

import (
	"encoding/binary"
	"errors"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/pcnet"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
	"sedspec/internal/workload"
)

func setup(t *testing.T, opts pcnet.Options) (*sedspec.Machine, *sedspec.Attached, *pcnet.Guest) {
	t.Helper()
	m := sedspec.NewMachine(machine.WithMemory(1 << 20))
	dev := pcnet.New(opts)
	att := m.Attach(dev, machine.WithPIO(0, pcnet.PortCount))
	return m, att, pcnet.NewGuest(sedspec.NewDriver(att))
}

func train(d *sedspec.Driver) error {
	return workload.TrainPCNet(d, workload.TrainConfig{Light: true})
}

func TestRegisterProtocol(t *testing.T) {
	_, _, g := setup(t, pcnet.Options{})
	lo, err := g.ReadCSR(88)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0x3003 {
		t.Errorf("chip id lo = %#x, want 0x3003", lo)
	}
	mac, err := g.ReadMAC()
	if err != nil {
		t.Fatal(err)
	}
	if mac[0] != 0x52 || mac[1] != 0x54 {
		t.Errorf("MAC prefix = %x", mac[:2])
	}
	if err := g.WriteBCR(20, 2); err != nil {
		t.Fatal(err)
	}
	v, err := g.ReadBCR(20)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("BCR20 = %d, want 2", v)
	}
}

func TestInitLatchesRings(t *testing.T) {
	_, att, g := setup(t, pcnet.Options{})
	g.RxLen, g.TxLen = 3, 2
	g.MAC = [6]byte{1, 2, 3, 4, 5, 6}
	if err := g.Setup(0); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	st := att.Dev().State()
	if v, _ := st.IntByName("rcvrl"); v != 3 {
		t.Errorf("rcvrl = %d, want 3", v)
	}
	if v, _ := st.IntByName("xmtrl"); v != 2 {
		t.Errorf("xmtrl = %d, want 2", v)
	}
	if got := st.Buf(att.Dev().Program().FieldIndex("aprom"))[0]; got != 1 {
		t.Errorf("aprom[0] = %d, want 1", got)
	}
	c, _ := g.ReadCSR(0)
	if c&pcnet.CSR0RXON == 0 || c&pcnet.CSR0TXON == 0 {
		t.Errorf("csr0 = %#x, want RXON|TXON", c)
	}
}

func TestWireTransmitRaisesTINT(t *testing.T) {
	m, _, g := setup(t, pcnet.Options{})
	if err := g.Setup(0); err != nil {
		t.Fatal(err)
	}
	f := make([]byte, 300)
	if err := g.Transmit(f); err != nil {
		t.Fatalf("Transmit: %v", err)
	}
	c, _ := g.ReadCSR(0)
	if c&pcnet.CSR0TINT == 0 {
		t.Errorf("csr0 = %#x, want TINT", c)
	}
	if !m.IRQ.Level(0) {
		t.Error("irq should be raised")
	}
}

func TestLoopbackDeliversFrame(t *testing.T) {
	m, _, g := setup(t, pcnet.Options{})
	g.RxLen = 2
	if err := g.Setup(pcnet.ModeLoop); err != nil {
		t.Fatal(err)
	}
	if err := g.ProvideRx(0); err != nil {
		t.Fatal(err)
	}
	f := make([]byte, 128)
	for i := range f {
		f[i] = byte(i)
	}
	if err := g.Transmit(f); err != nil {
		t.Fatalf("Transmit: %v", err)
	}
	flags, mlen, err := g.RxStatus(0)
	if err != nil {
		t.Fatal(err)
	}
	if flags&pcnet.DescOWN != 0 {
		t.Error("rx descriptor still owned by device")
	}
	if mlen != 128+4 {
		t.Errorf("message length = %d, want 132", mlen)
	}
	got := make([]byte, 132)
	if err := m.Mem.Read(0x1_0000, got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		if got[i] != byte(i) {
			t.Fatalf("frame byte %d = %d", i, got[i])
		}
	}
	// FCS model: the 4 tail bytes repeated.
	for k := 0; k < 4; k++ {
		if got[128+k] != f[124+k] {
			t.Errorf("fcs[%d] = %d, want %d", k, got[128+k], f[124+k])
		}
	}
}

func TestWireReceive(t *testing.T) {
	_, _, g := setup(t, pcnet.Options{})
	g.RxLen = 2
	if err := g.Setup(0); err != nil {
		t.Fatal(err)
	}
	if err := g.ProvideRx(0); err != nil {
		t.Fatal(err)
	}
	if err := g.InjectWireFrame(make([]byte, 200)); err != nil {
		t.Fatalf("inject: %v", err)
	}
	_, mlen, err := g.RxStatus(0)
	if err != nil {
		t.Fatal(err)
	}
	if mlen != 204 {
		t.Errorf("message length = %d, want 204", mlen)
	}
}

func TestReceiveNoDescriptorDropsFrame(t *testing.T) {
	m, _, g := setup(t, pcnet.Options{})
	g.RxLen = 2
	if err := g.Setup(0); err != nil {
		t.Fatal(err)
	}
	if err := g.AckInterrupts(); err != nil {
		t.Fatal(err)
	}
	m.IRQ.Deassert(0)
	if err := g.InjectWireFrame(make([]byte, 100)); err != nil {
		t.Fatalf("inject: %v", err)
	}
	if m.IRQ.Level(0) {
		t.Error("dropped frame must not raise RINT")
	}
}

func gadgetFrame(t *testing.T, att *sedspec.Attached) []byte {
	t.Helper()
	prog := att.Dev().Program()
	gadget := prog.HandlerIndex("host_gadget")
	if gadget < 0 {
		t.Fatal("no gadget handler")
	}
	// 4096-byte frame whose last 4 bytes become the FCS written over
	// irq_cb's low half; the rest of the pointer stays zero because the
	// legitimate handler index is small.
	f := make([]byte, pcnet.BufSize)
	binary.LittleEndian.PutUint32(f[pcnet.BufSize-4:], uint32(gadget))
	return f
}

// CVE-2015-7504: oversized wire frame lands the FCS on irq_cb.
func TestCVE7504UnprotectedHijack(t *testing.T) {
	_, att, g := setup(t, pcnet.Options{})
	g.RxLen = 2
	if err := g.Setup(0); err != nil {
		t.Fatal(err)
	}
	if err := g.ProvideRx(0); err != nil {
		t.Fatal(err)
	}
	if err := g.InjectWireFrame(gadgetFrame(t, att)); err != nil {
		t.Fatalf("inject: %v", err)
	}
	// The FCS append corrupted irq_cb before the delivery interrupt, so
	// the gadget ran in the same round.
	if v, _ := att.Dev().State().IntByName("csr0"); v != 0xFFFF {
		t.Errorf("csr0 = %#x, want 0xFFFF (gadget executed)", v)
	}
}

func TestCVE7504Fix(t *testing.T) {
	_, att, g := setup(t, pcnet.Options{Fix7504: true})
	g.RxLen = 2
	if err := g.Setup(0); err != nil {
		t.Fatal(err)
	}
	if err := g.ProvideRx(0); err != nil {
		t.Fatal(err)
	}
	if err := g.InjectWireFrame(gadgetFrame(t, att)); err != nil {
		t.Fatalf("inject: %v", err)
	}
	if v, _ := att.Dev().State().IntByName("csr0"); v == 0xFFFF {
		t.Error("gadget executed despite fix")
	}
}

func learnPCNet(t *testing.T, att *sedspec.Attached) *sedspec.LearnResult {
	t.Helper()
	r, err := sedspec.LearnFull(att, train)
	if err != nil {
		t.Fatalf("LearnFull: %v", err)
	}
	return r
}

func TestBenignPassesUnderProtection(t *testing.T) {
	m, att, _ := setup(t, pcnet.Options{})
	spec := learnPCNet(t, att).Spec
	chk := sedspec.Protect(att, spec)
	if err := train(sedspec.NewDriver(att)); err != nil {
		t.Fatalf("benign traffic blocked: %v", err)
	}
	if m.Halted() {
		t.Fatal("halted on benign traffic")
	}
	st := chk.Stats()
	if st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies != 0 {
		t.Fatalf("anomalies on benign traffic: %+v", st)
	}
}

func TestCVE7504CaughtByIndirectCheckOnly(t *testing.T) {
	// Per the paper: the parameter check misses CVE-2015-7504 (the index
	// is a temporary, not a device-state parameter); the indirect-jump
	// check catches the corrupted handler pointer before invocation.
	m, att, g := setup(t, pcnet.Options{})
	spec := learnPCNet(t, att).Spec
	sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyIndirectJump))

	g.RxLen = 2
	if err := g.Setup(0); err != nil {
		t.Fatal(err)
	}
	if err := g.ProvideRx(0); err != nil {
		t.Fatal(err)
	}
	err := g.InjectWireFrame(gadgetFrame(t, att))
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyIndirectJump {
		t.Fatalf("want indirect-jump anomaly, got %v", err)
	}
	if !m.Halted() {
		t.Error("machine should halt")
	}
	if v, _ := att.Dev().State().IntByName("csr0"); v == 0xFFFF {
		t.Error("gadget executed despite protection")
	}
}

func TestCVE7504EvadesParameterCheck(t *testing.T) {
	_, att, g := setup(t, pcnet.Options{})
	spec := learnPCNet(t, att).Spec
	sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyParameter))

	g.RxLen = 2
	if err := g.Setup(0); err != nil {
		t.Fatal(err)
	}
	if err := g.ProvideRx(0); err != nil {
		t.Fatal(err)
	}
	if err := g.InjectWireFrame(gadgetFrame(t, att)); err != nil {
		t.Fatalf("parameter check should not flag CVE-2015-7504: %v", err)
	}
	// The exploit proceeded (the paper's reported limitation).
	if v, _ := att.Dev().State().IntByName("csr0"); v != 0xFFFF {
		t.Error("exploit should have succeeded under parameter-check-only")
	}
}

// cve7512 drives the loopback transmit overflow: chained descriptors whose
// total exceeds the frame buffer.
func cve7512(t *testing.T, g *pcnet.Guest, att *sedspec.Attached) error {
	t.Helper()
	prog := att.Dev().Program()
	gadget := prog.HandlerIndex("host_gadget")
	chunk1 := make([]byte, 4000)
	// Second chunk: bytes 4000..4127 cover irq_cb at arena offset 4096.
	chunk2 := make([]byte, 128)
	binary.LittleEndian.PutUint64(chunk2[96:], uint64(gadget)) // 4000+96 = 4096
	return g.Transmit(chunk1, chunk2)
}

func TestCVE7512UnprotectedHijack(t *testing.T) {
	_, att, g := setup(t, pcnet.Options{})
	if err := g.Setup(pcnet.ModeLoop); err != nil {
		t.Fatal(err)
	}
	if err := g.ProvideRx(0); err != nil {
		t.Fatal(err)
	}
	if err := cve7512(t, g, att); err != nil {
		t.Fatalf("unprotected exploit failed: %v", err)
	}
	if v, _ := att.Dev().State().IntByName("csr0"); v != 0xFFFF {
		t.Errorf("csr0 = %#x, want 0xFFFF (gadget executed)", v)
	}
}

func TestCVE7512BlockedByParameterCheck(t *testing.T) {
	m, att, g := setup(t, pcnet.Options{})
	spec := learnPCNet(t, att).Spec
	sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyParameter))

	if err := g.Setup(pcnet.ModeLoop); err != nil {
		t.Fatal(err)
	}
	if err := g.ProvideRx(0); err != nil {
		t.Fatal(err)
	}
	err := cve7512(t, g, att)
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyParameter {
		t.Fatalf("want parameter anomaly, got %v", err)
	}
	if !m.Halted() {
		t.Error("machine should halt")
	}
}

func TestCVE7512Fix(t *testing.T) {
	_, att, g := setup(t, pcnet.Options{Fix7512: true})
	if err := g.Setup(pcnet.ModeLoop); err != nil {
		t.Fatal(err)
	}
	if err := g.ProvideRx(0); err != nil {
		t.Fatal(err)
	}
	if err := cve7512(t, g, att); err != nil {
		t.Fatalf("patched device errored: %v", err)
	}
	if v, _ := att.Dev().State().IntByName("csr0"); v == 0xFFFF {
		t.Error("gadget executed despite fix")
	}
}

// cve7909 programs a zero-length receive ring via the init block, then
// triggers reception with no owned descriptors.
func cve7909(g *pcnet.Guest) error {
	g.RxLen = 0
	if err := g.Setup(0); err != nil {
		return err
	}
	return g.InjectWireFrame(make([]byte, 64))
}

func TestCVE7909UnprotectedHangs(t *testing.T) {
	_, att, g := setup(t, pcnet.Options{})
	// Bound the emulation so the test terminates; the fault stands in for
	// a hung vCPU thread.
	att.Interp().SetStepBudget(200_000)
	g.RxLen = 0
	if err := g.Setup(0); err != nil {
		t.Fatal(err)
	}
	res, err := att.DispatchDirect(interp.NewWrite(interp.SpacePIO, pcnet.PortWire, make([]byte, 64)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault == nil || res.Fault.Kind != interp.FaultStepBudget {
		t.Fatalf("fault = %v, want step-budget (emulation loop)", res.Fault)
	}
}

func TestCVE7909BlockedByConditionalCheck(t *testing.T) {
	m, att, g := setup(t, pcnet.Options{})
	spec := learnPCNet(t, att).Spec
	sedspec.Protect(att, spec,
		checker.WithStrategies(checker.StrategyConditionalJump),
		checker.WithBudget(100_000))

	g.RxLen = 0
	if err := g.Setup(0); err != nil {
		t.Fatal(err)
	}
	err := g.InjectWireFrame(make([]byte, 64))
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyConditionalJump {
		t.Fatalf("want conditional-jump anomaly, got %v", err)
	}
	if !m.Halted() {
		t.Error("machine should halt before the device spins")
	}
}

func TestCVE7909Fix(t *testing.T) {
	_, att, g := setup(t, pcnet.Options{Fix7909: true})
	att.Interp().SetStepBudget(200_000)
	if err := cve7909(g); err != nil {
		t.Fatalf("patched device errored: %v", err)
	}
	if v, _ := att.Dev().State().IntByName("rcvrl"); v != 1 {
		t.Errorf("rcvrl = %d, want 1 (clamped)", v)
	}
}

// TestLinkStateSyncPoint verifies the paper's sync-point machinery end to
// end: the transmit path branches on the backend link state, which is not
// derivable from device state or I/O data. The checker resolves it by
// querying the environment, so protected transmissions stay clean whether
// the cable is up or down.
func TestLinkStateSyncPoint(t *testing.T) {
	m, att, g := setup(t, pcnet.Options{})
	r, err := sedspec.LearnFull(att, train)
	if err != nil {
		t.Fatal(err)
	}
	if r.Spec.Stats.SyncPoints == 0 {
		t.Fatal("the link-state read should be a sync point")
	}
	chk := sedspec.Protect(att, r.Spec)

	if err := g.Setup(0); err != nil {
		t.Fatal(err)
	}
	for _, up := range []bool{true, false, true, false} {
		att.SetLink(up)
		if err := g.Transmit(make([]byte, 256)); err != nil {
			t.Fatalf("link=%v transmit blocked: %v", up, err)
		}
		if err := g.AckInterrupts(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Halted() {
		t.Fatal("machine halted")
	}
	st := chk.Stats()
	if st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies != 0 {
		t.Fatalf("link toggling caused anomalies: %+v", st)
	}
	if st.SyncPointsResolved == 0 {
		t.Error("sync points should have been resolved")
	}
}
