package pcnet

import (
	"encoding/binary"
	"fmt"

	"sedspec/internal/devices/devutil"
)

// Guest memory layout used by the driver helper.
const (
	guestInitBlock = 0x0100
	guestRxRing    = 0x0200
	guestTxRing    = 0x0400
	guestRxBufs    = 0x1_0000 // 8 KiB per slot
	guestTxBuf     = 0x3_0000
)

// Guest drives the adapter the way the Linux pcnet32 driver would:
// register access through RAP/RDP, initialization block setup, descriptor
// ring management, and interrupt acknowledgement.
type Guest struct {
	p     devutil.Port
	RxLen uint16
	TxLen uint16
	MAC   [6]byte
	// txSlot mirrors the device's transmit ring cursor.
	txSlot uint16
}

// NewGuest wraps a port driver with 4-slot rings.
func NewGuest(p devutil.Port) *Guest {
	return &Guest{p: p, RxLen: 4, TxLen: 4, MAC: [6]byte{0x52, 0x54, 0, 0, 0, 1}}
}

// WriteCSR selects a CSR through RAP and writes it through RDP.
func (g *Guest) WriteCSR(idx, v uint16) error {
	if _, err := g.p.Out(PortRAP, le16(idx)); err != nil {
		return err
	}
	_, err := g.p.Out(PortRDP, le16(v))
	return err
}

// ReadCSR selects and reads a CSR.
func (g *Guest) ReadCSR(idx uint16) (uint16, error) {
	if _, err := g.p.Out(PortRAP, le16(idx)); err != nil {
		return 0, err
	}
	out, _, err := g.p.In(PortRDP)
	if err != nil {
		return 0, err
	}
	if len(out) < 2 {
		return 0, fmt.Errorf("pcnet: short CSR read")
	}
	return binary.LittleEndian.Uint16(out), nil
}

// WriteBCR selects and writes a bus configuration register.
func (g *Guest) WriteBCR(idx, v uint16) error {
	if _, err := g.p.Out(PortRAP, le16(idx)); err != nil {
		return err
	}
	_, err := g.p.Out(PortBDP, le16(v))
	return err
}

// ReadBCR selects and reads a bus configuration register.
func (g *Guest) ReadBCR(idx uint16) (uint16, error) {
	if _, err := g.p.Out(PortRAP, le16(idx)); err != nil {
		return 0, err
	}
	out, _, err := g.p.In(PortBDP)
	if err != nil {
		return 0, err
	}
	if len(out) < 2 {
		return 0, fmt.Errorf("pcnet: short BCR read")
	}
	return binary.LittleEndian.Uint16(out), nil
}

// SoftReset reads the reset port.
func (g *Guest) SoftReset() error {
	_, _, err := g.p.In(PortReset)
	return err
}

// ReadMAC reads the station address PROM.
func (g *Guest) ReadMAC() ([6]byte, error) {
	var mac [6]byte
	for i := 0; i < 6; i++ {
		out, _, err := g.p.In(PortAPROM + uint64(i))
		if err != nil {
			return mac, err
		}
		if len(out) > 0 {
			mac[i] = out[0]
		}
	}
	return mac, nil
}

// Setup writes the initialization block, runs INIT, acknowledges IDON, and
// starts the adapter. mode selects CSR15 bits (ModeLoop for loopback).
func (g *Guest) Setup(mode uint16) error {
	mem := g.p.Machine().Mem
	ib := make([]byte, 22)
	binary.LittleEndian.PutUint16(ib[0:], mode)
	binary.LittleEndian.PutUint16(ib[2:], g.RxLen)
	binary.LittleEndian.PutUint16(ib[4:], g.TxLen)
	binary.LittleEndian.PutUint32(ib[8:], guestRxRing)
	binary.LittleEndian.PutUint32(ib[12:], guestTxRing)
	copy(ib[16:], g.MAC[:])
	if err := mem.Write(guestInitBlock, ib); err != nil {
		return err
	}
	// Clear the rings.
	zero := make([]byte, 16*int(g.RxLen))
	if err := mem.Write(guestRxRing, zero); err != nil {
		return err
	}
	zero = make([]byte, 16*int(g.TxLen))
	if err := mem.Write(guestTxRing, zero); err != nil {
		return err
	}

	if err := g.WriteCSR(1, uint16(guestInitBlock)); err != nil {
		return err
	}
	if err := g.WriteCSR(2, uint16(guestInitBlock>>16)); err != nil {
		return err
	}
	if err := g.WriteCSR(0, CSR0Init); err != nil {
		return err
	}
	c, err := g.ReadCSR(0)
	if err != nil {
		return err
	}
	if c&CSR0IDON == 0 {
		return fmt.Errorf("pcnet: IDON not set after init (csr0=%#x)", c)
	}
	// Acknowledge IDON and start.
	if err := g.WriteCSR(0, CSR0IDON|CSR0Strt); err != nil {
		return err
	}
	g.txSlot = 0
	return nil
}

// ProvideRx arms receive descriptor slot with an owned buffer.
func (g *Guest) ProvideRx(slot uint16) error {
	mem := g.p.Machine().Mem
	desc := make([]byte, 16)
	binary.LittleEndian.PutUint32(desc[DescAddr:], uint32(guestRxBufs)+uint32(slot)*0x2000)
	binary.LittleEndian.PutUint32(desc[DescFlags:], DescOWN)
	binary.LittleEndian.PutUint32(desc[DescLen:], 0x2000)
	return mem.Write(guestRxRing+uint64(slot)*16, desc)
}

// ClearRx releases a receive descriptor (not owned by the device).
func (g *Guest) ClearRx(slot uint16) error {
	mem := g.p.Machine().Mem
	return mem.Write(guestRxRing+uint64(slot)*16+DescFlags, []byte{0, 0, 0, 0})
}

// RxStatus reads a receive descriptor's writeback (flags, message length).
func (g *Guest) RxStatus(slot uint16) (flags uint32, mlen uint32, err error) {
	mem := g.p.Machine().Mem
	buf := make([]byte, 16)
	if err := mem.Read(guestRxRing+uint64(slot)*16, buf); err != nil {
		return 0, 0, err
	}
	return binary.LittleEndian.Uint32(buf[DescFlags:]), binary.LittleEndian.Uint32(buf[DescStat:]), nil
}

// Transmit queues frame chunks as a descriptor chain at the ring cursor
// and rings TDMD. Each chunk gets its own TMD; the last carries ENP.
func (g *Guest) Transmit(chunks ...[]byte) error {
	mem := g.p.Machine().Mem
	addr := uint64(guestTxBuf)
	for i, chunk := range chunks {
		if err := mem.Write(addr, chunk); err != nil {
			return err
		}
		slot := (g.txSlot + uint16(i)) % g.TxLen
		desc := make([]byte, 16)
		binary.LittleEndian.PutUint32(desc[DescAddr:], uint32(addr))
		flags := uint32(DescOWN)
		if i == len(chunks)-1 {
			flags |= DescENP
		}
		binary.LittleEndian.PutUint32(desc[DescFlags:], flags)
		binary.LittleEndian.PutUint32(desc[DescLen:], uint32(len(chunk)))
		if err := mem.Write(guestTxRing+uint64(slot)*16, desc); err != nil {
			return err
		}
		addr += uint64(len(chunk))
	}
	g.txSlot = (g.txSlot + uint16(len(chunks))) % g.TxLen
	return g.WriteCSR(0, CSR0TDMD)
}

// InjectWireFrame hands a frame from the network backend to the adapter.
func (g *Guest) InjectWireFrame(frame []byte) error {
	_, err := g.p.Out(PortWire, frame)
	return err
}

// AckInterrupts clears pending TINT/RINT/IDON bits.
func (g *Guest) AckInterrupts() error {
	c, err := g.ReadCSR(0)
	if err != nil {
		return err
	}
	return g.WriteCSR(0, c&(CSR0IDON|CSR0TINT|CSR0RINT))
}

func le16(v uint16) []byte {
	b := make([]byte, 2)
	binary.LittleEndian.PutUint16(b, v)
	return b
}
