// Package pcnet models the AMD PCnet-PCI II (Am79C970A) network adapter
// as emulated by QEMU (hw/net/pcnet.c): the RAP/RDP register access
// protocol, initialization block DMA, descriptor-ring transmit and
// receive, loopback, and interrupt delivery.
//
// Three QEMU CVEs are seeded:
//
//   - CVE-2015-7504: the receive path appends a 4-byte CRC after the frame
//     in the adapter's frame buffer using a size value taken from the
//     frame itself (a temporary, not a device-state parameter). A
//     4096-byte frame lands the CRC on the adjacent irq callback pointer.
//   - CVE-2015-7512: the loopback transmit path accumulates descriptor
//     chunks at xmit_pos with no capacity check, so xmit_pos can exceed
//     4092 and the frame-buffer write goes out of bounds.
//   - CVE-2016-7909: receive-ring scanning decrements a ring-length
//     counter that underflows when the guest programs RCVRL = 0, spinning
//     the emulation for ~2^32 iterations (a denial of service).
//
// Options.Fix7504/Fix7512/Fix7909 apply the upstream fixes.
package pcnet

import (
	"sedspec/internal/devices/devutil"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// Port offsets within the adapter's window.
const (
	PortAPROM = 0x00 // 16 bytes of station address PROM
	PortRDP   = 0x10 // register data port (CSR access)
	PortRAP   = 0x12 // register address port
	PortReset = 0x14 // soft reset on read
	PortBDP   = 0x16 // bus configuration data port (BCR access)
	// PortWire is where the network backend hands received frames to the
	// adapter — the stand-in for QEMU's net backend callback.
	PortWire = 0x18
	// PortCount is the port window size.
	PortCount = 0x20
)

// CSR0 bits.
const (
	CSR0Init = 0x0001
	CSR0Strt = 0x0002
	CSR0Stop = 0x0004
	CSR0TDMD = 0x0008
	CSR0TXON = 0x0010
	CSR0RXON = 0x0020
	CSR0IENA = 0x0040
	CSR0INTR = 0x0080
	CSR0IDON = 0x0100
	CSR0TINT = 0x0200
	CSR0RINT = 0x0400
)

// Mode bits (CSR15).
const (
	ModeLoop = 0x0004 // internal loopback
)

// Descriptor layout (16 bytes in guest memory).
const (
	DescAddr  = 0  // buffer guest address (u32)
	DescFlags = 4  // OWN/ENP flags (u32)
	DescLen   = 8  // buffer length (u32)
	DescStat  = 12 // status writeback (u32)
)

// Descriptor flags.
const (
	DescOWN = 0x8000_0000
	DescENP = 0x0100_0000
)

// BufSize is the adapter frame buffer capacity.
const BufSize = 4096

// CRCSize is the frame check sequence length appended on receive.
const CRCSize = 4

// Options configure the seeded vulnerabilities.
type Options struct {
	Fix7504 bool // bound the CRC append (CVE-2015-7504)
	Fix7512 bool // bound xmit_pos accumulation (CVE-2015-7512)
	Fix7909 bool // reject RCVRL = 0 (CVE-2016-7909)
}

// Device is the emulated network adapter.
type Device struct {
	*devutil.Base
}

// New builds the adapter.
func New(opts Options) *Device {
	prog := build(opts)
	return &Device{Base: devutil.NewBase(prog, func(st *interp.State, p *ir.Program) {
		devutil.SetFunc(st, p, "irq_cb", "pcnet_update_irq")
		st.SetIntByName("rcvrl", 1)
		st.SetIntByName("xmtrl", 1)
		mac := []byte{0x52, 0x54, 0x00, 0x12, 0x34, 0x56}
		copy(st.Buf(p.FieldIndex("aprom")), mac)
	})}
}

func build(opts Options) *ir.Program {
	b := ir.NewBuilder("pcnet")

	// PCNetState control structure. buffer is immediately followed by
	// irq_cb: the CVE-2015-7504 CRC append walks into it.
	buffer := b.Buf("buffer", BufSize)
	irqCb := b.Func("irq_cb")
	xmitPos := b.Int("xmit_pos", ir.W32)
	csr0 := b.Int("csr0", ir.W16, ir.HWRegister())
	rap := b.Int("rap", ir.W16, ir.HWRegister())
	mode := b.Int("mode", ir.W16, ir.HWRegister())
	rcvrl := b.Int("rcvrl", ir.W16, ir.HWRegister())
	xmtrl := b.Int("xmtrl", ir.W16, ir.HWRegister())
	rdra := b.Int("rdra", ir.W32)
	tdra := b.Int("tdra", ir.W32)
	rcvrc := b.Int("rcvrc", ir.W16)
	xmtrc := b.Int("xmtrc", ir.W16)
	iaddr := b.Int("iaddr", ir.W32)
	bcr20 := b.Int("bcr20", ir.W16, ir.HWRegister())
	rxTries := b.Int("rx_tries", ir.W32)
	aprom := b.Buf("aprom", 16)

	buildDispatch(b, aprom)
	buildCSR(b, opts, csr0, rap, mode, rcvrl, xmtrl, rdra, tdra, rcvrc, xmtrc, iaddr, bcr20, irqCb)
	buildInit(b, opts, csr0, mode, rcvrl, xmtrl, rdra, tdra, rcvrc, xmtrc, iaddr, irqCb, aprom)
	buildTransmit(b, opts, buffer, xmitPos, csr0, mode, xmtrl, tdra, xmtrc, irqCb)
	buildReceive(b, opts, buffer, csr0, rcvrl, rdra, rcvrc, irqCb, xmitPos, rxTries)
	buildHelpers(b, csr0)

	b.Dispatch("pcnet_ioport")
	return devutil.MustBuild(b)
}

func buildDispatch(b *ir.Builder, aprom ir.FieldID) {
	h := b.Handler("pcnet_ioport")
	e := h.Block("entry").Entry()
	isw := e.IOIsWrite("dir = req->write")
	one := e.Const(1, "1")
	e.Branch(isw, ir.RelEQ, one, ir.W8, false, "if (req->write)", "wr", "rd")

	w := h.Block("wr")
	waddr := w.IOAddr("addr = req->addr")
	w.Switch(waddr, "switch (addr)", "out",
		ir.Case(PortRDP, "w_rdp"),
		ir.Case(PortRAP, "w_rap"),
		ir.Case(PortBDP, "w_bdp"),
		ir.Case(PortWire, "w_wire"),
	)
	wr := h.Block("w_rdp")
	wr.Call("pcnet_csr_writew", "pcnet_csr_writew(s, s->rap, v)")
	wr.Jump("out", "goto out")
	wa := h.Block("w_rap")
	wa.Call("pcnet_rap_write", "s->rap = v")
	wa.Jump("out", "goto out")
	wb := h.Block("w_bdp")
	wb.Call("pcnet_bcr_writew", "pcnet_bcr_writew(s, s->rap, v)")
	wb.Jump("out", "goto out")
	ww := h.Block("w_wire")
	ww.Call("pcnet_receive", "pcnet_receive(s, buf, size)")
	ww.Jump("out", "goto out")

	r := h.Block("rd")
	raddr := r.IOAddr("addr = req->addr")
	r.Switch(raddr, "switch (addr)", "r_aprom",
		ir.Case(PortRDP, "r_rdp"),
		ir.Case(PortRAP, "r_rap"),
		ir.Case(PortReset, "r_reset"),
		ir.Case(PortBDP, "r_bdp"),
	)
	rr := h.Block("r_rdp")
	rr.Call("pcnet_csr_readw", "v = pcnet_csr_readw(s, s->rap)")
	rr.Jump("out", "goto out")
	ra := h.Block("r_rap")
	ra.Call("pcnet_rap_read", "v = s->rap")
	ra.Jump("out", "goto out")
	rs := h.Block("r_reset")
	rs.Call("pcnet_soft_reset", "pcnet_soft_reset(s)")
	rs.Jump("out", "goto out")
	rb := h.Block("r_bdp")
	rb.Call("pcnet_bcr_readw", "v = pcnet_bcr_readw(s, s->rap)")
	rb.Jump("out", "goto out")

	// APROM reads return the station address byte at the low address
	// bits.
	ap := h.Block("r_aprom")
	addr2 := ap.IOAddr("addr = req->addr")
	mask := ap.Const(0x0F, "0x0f")
	idx := ap.Arith(ir.ALUAnd, addr2, mask, ir.W16, false, "addr & 0x0f")
	v := ap.BufLoad(aprom, idx, ir.W16, false, "v = s->aprom[addr & 0x0f]")
	ap.IOOut(v, ir.W8, "iowrite8(v)")
	ap.Jump("out", "goto out")

	h.Block("out").Exit().Halt("return")
}
