package pcnet

import "sedspec/internal/ir"

// buildCSR emits the register access protocol: RAP select, CSR read/write
// dispatch (the adapter's command surface), BCR access, and soft reset.
func buildCSR(b *ir.Builder, opts Options, csr0, rap, mode, rcvrl, xmtrl, rdra, tdra, rcvrc, xmtrc, iaddr, bcr20, irqCb ir.FieldID) {
	// RAP
	hw := b.Handler("pcnet_rap_write")
	e := hw.Block("entry")
	v := e.IOIn(ir.W16, "v = ioread16()")
	mask := e.Const(0x7F, "0x7f")
	vm := e.Arith(ir.ALUAnd, v, mask, ir.W16, false, "v & 0x7f")
	e.Store(rap, vm, "s->rap = v & 0x7f")
	e.Return("return")

	hr := b.Handler("pcnet_rap_read")
	er := hr.Block("entry")
	rv := er.Load(rap, "v = s->rap")
	er.IOOut(rv, ir.W16, "iowrite16(v)")
	er.Return("return")

	// CSR write: the adapter's command dispatch.
	cw := b.Handler("pcnet_csr_writew")
	ce := cw.Block("entry").CmdDecision()
	val := ce.IOIn(ir.W16, "v = ioread16()")
	r := ce.Load(rap, "r = s->rap")
	ce.Switch(r, "switch (s->rap)", "w_ignore",
		ir.Case(0, "w_csr0"),
		ir.Case(1, "w_iaddr_lo"),
		ir.Case(2, "w_iaddr_hi"),
		ir.Case(15, "w_mode"),
		ir.Case(24, "w_rdra_lo"),
		ir.Case(25, "w_rdra_hi"),
		ir.Case(30, "w_tdra_lo"),
		ir.Case(31, "w_tdra_hi"),
		ir.Case(76, "w_rcvrl"),
		ir.Case(78, "w_xmtrl"),
	)

	// CSR0 control bits, checked in QEMU's order: STOP, INIT, STRT, TDMD,
	// plus write-one-to-clear interrupt bits.
	c0 := cw.Block("w_csr0")
	stop := c0.Const(CSR0Stop, "CSR0_STOP")
	sb := c0.Arith(ir.ALUAnd, val, stop, ir.W16, false, "v & STOP")
	z := c0.Const(0, "0")
	c0.Branch(sb, ir.RelNE, z, ir.W16, false, "if (v & STOP)", "c0_stop", "c0_clr")

	cs := cw.Block("c0_stop").CmdEnd()
	sv := cs.Const(CSR0Stop, "STOP")
	cs.Store(csr0, sv, "s->csr0 = STOP")
	cs.Return("return")

	// Write-one-to-clear: IDON/TINT/RINT acknowledged by writing 1.
	cc := cw.Block("c0_clr")
	ackMask := cc.Const(CSR0IDON|CSR0TINT|CSR0RINT, "IDON|TINT|RINT")
	ack := cc.Arith(ir.ALUAnd, val, ackMask, ir.W16, false, "v & (IDON|TINT|RINT)")
	cur := cc.Load(csr0, "c = s->csr0")
	inv := cc.Const(0xFFFF, "0xffff")
	nack := cc.Arith(ir.ALUXor, ack, inv, ir.W16, false, "~ack")
	c2 := cc.Arith(ir.ALUAnd, cur, nack, ir.W16, false, "c & ~ack")
	cc.Store(csr0, c2, "s->csr0 &= ~ack")
	initB := cc.Const(CSR0Init, "INIT")
	ib := cc.Arith(ir.ALUAnd, val, initB, ir.W16, false, "v & INIT")
	cc.Branch(ib, ir.RelNE, z2(cc), ir.W16, false, "if (v & INIT)", "c0_init", "c0_strt")

	ci := cw.Block("c0_init")
	ci.Call("pcnet_init", "pcnet_init(s)")
	ci.Jump("c0_strt", "fallthrough")

	cst := cw.Block("c0_strt")
	strt := cst.Const(CSR0Strt, "STRT")
	sb2 := cst.Arith(ir.ALUAnd, val, strt, ir.W16, false, "v & STRT")
	cst.Branch(sb2, ir.RelNE, z2(cst), ir.W16, false, "if (v & STRT)", "c0_start", "c0_tdmd")

	csa := cw.Block("c0_start")
	cur2 := csa.Load(csr0, "c = s->csr0")
	on := csa.Const(CSR0Strt|CSR0TXON|CSR0RXON, "STRT|TXON|RXON")
	c3 := csa.Arith(ir.ALUOr, cur2, on, ir.W16, false, "c | STRT|TXON|RXON")
	csa.Store(csr0, c3, "s->csr0 |= STRT|TXON|RXON")
	csa.Jump("c0_tdmd", "fallthrough")

	ct := cw.Block("c0_tdmd")
	tdmd := ct.Const(CSR0TDMD, "TDMD")
	tb := ct.Arith(ir.ALUAnd, val, tdmd, ir.W16, false, "v & TDMD")
	ct.Branch(tb, ir.RelNE, z2(ct), ir.W16, false, "if (v & TDMD)", "c0_xmit", "c0_done")

	cx := cw.Block("c0_xmit")
	cx.Call("pcnet_transmit", "pcnet_transmit(s)")
	cx.Jump("c0_done", "fallthrough")

	cw.Block("c0_done").CmdEnd().Return("return")

	// Address halves and plain registers.
	lo16 := func(label, stmt string, f ir.FieldID) {
		blk := cw.Block(label).CmdEnd()
		curv := blk.Load(f, "cur")
		keep := blk.Const(0xFFFF_0000, "0xffff0000")
		kept := blk.Arith(ir.ALUAnd, curv, keep, ir.W32, false, "cur & 0xffff0000")
		nv := blk.Arith(ir.ALUOr, kept, val, ir.W32, false, "(cur & 0xffff0000) | v")
		blk.Store(f, nv, stmt)
		blk.Return("return")
	}
	hi16 := func(label, stmt string, f ir.FieldID) {
		blk := cw.Block(label).CmdEnd()
		curv := blk.Load(f, "cur")
		keep := blk.Const(0x0000_FFFF, "0xffff")
		kept := blk.Arith(ir.ALUAnd, curv, keep, ir.W32, false, "cur & 0xffff")
		sh := blk.Const(16, "16")
		vs := blk.Arith(ir.ALUShl, val, sh, ir.W32, false, "v << 16")
		nv := blk.Arith(ir.ALUOr, kept, vs, ir.W32, false, "(cur & 0xffff) | (v << 16)")
		blk.Store(f, nv, stmt)
		blk.Return("return")
	}
	lo16("w_iaddr_lo", "s->iaddr = lo(v)", iaddr)
	hi16("w_iaddr_hi", "s->iaddr = hi(v)", iaddr)
	lo16("w_rdra_lo", "s->rdra = lo(v)", rdra)
	hi16("w_rdra_hi", "s->rdra = hi(v)", rdra)
	lo16("w_tdra_lo", "s->tdra = lo(v)", tdra)
	hi16("w_tdra_hi", "s->tdra = hi(v)", tdra)

	wm := cw.Block("w_mode").CmdEnd()
	wm.Store(mode, val, "s->mode = v")
	wm.Return("return")

	wrl := cw.Block("w_rcvrl").CmdEnd()
	if opts.Fix7909 {
		wrl.Branch(val, ir.RelEQ, z2(wrl), ir.W16, false,
			"if (v == 0) /* CVE-2016-7909 fix */", "w_rcvrl_min", "w_rcvrl_set")
		wmin := cw.Block("w_rcvrl_min")
		onev := wmin.Const(1, "1")
		wmin.Store(rcvrl, onev, "s->rcvrl = 1")
		wmin.Return("return")
		wset := cw.Block("w_rcvrl_set")
		wset.Store(rcvrl, val, "s->rcvrl = v")
		wset.Return("return")
	} else {
		wrl.Store(rcvrl, val, "s->rcvrl = v /* 0 allowed: CVE-2016-7909 */")
		wrl.Return("return")
	}

	wxl := cw.Block("w_xmtrl").CmdEnd()
	wxl.Store(xmtrl, val, "s->xmtrl = v")
	wxl.Return("return")

	cw.Block("w_ignore").CmdEnd().Return("return /* read-only or unmodelled CSR */")

	// CSR read.
	cr := b.Handler("pcnet_csr_readw")
	cre := cr.Block("entry")
	rr := cre.Load(rap, "r = s->rap")
	cre.Switch(rr, "switch (s->rap)", "r_zero",
		ir.Case(0, "r_csr0"),
		ir.Case(76, "r_rcvrl"),
		ir.Case(78, "r_xmtrl"),
		ir.Case(88, "r_chipid_lo"),
		ir.Case(89, "r_chipid_hi"),
	)
	emit := func(label string, f ir.FieldID, stmt string) {
		blk := cr.Block(label)
		vv := blk.Load(f, stmt)
		blk.IOOut(vv, ir.W16, "iowrite16(v)")
		blk.Return("return")
	}
	emit("r_csr0", csr0, "v = s->csr0")
	emit("r_rcvrl", rcvrl, "v = s->rcvrl")
	emit("r_xmtrl", xmtrl, "v = s->xmtrl")
	emitConst := func(label string, c uint64, stmt string) {
		blk := cr.Block(label)
		vv := blk.Const(c, stmt)
		blk.IOOut(vv, ir.W16, "iowrite16(v)")
		blk.Return("return")
	}
	emitConst("r_chipid_lo", 0x3003, "v = 0x3003")
	emitConst("r_chipid_hi", 0x0262, "v = 0x0262")
	emitConst("r_zero", 0, "v = 0")

	// BCR access.
	bw := b.Handler("pcnet_bcr_writew")
	bwe := bw.Block("entry")
	bv := bwe.IOIn(ir.W16, "v = ioread16()")
	br := bwe.Load(rap, "r = s->rap")
	c20 := bwe.Const(20, "20")
	bwe.Branch(br, ir.RelEQ, c20, ir.W16, false, "if (s->rap == 20)", "b_sw", "b_ignore")
	bs := bw.Block("b_sw")
	bs.Store(bcr20, bv, "s->bcr20 = v")
	bs.Return("return")
	bw.Block("b_ignore").Return("return")

	brd := b.Handler("pcnet_bcr_readw")
	bre := brd.Block("entry")
	bvv := bre.Load(bcr20, "v = s->bcr20")
	bre.IOOut(bvv, ir.W16, "iowrite16(v)")
	bre.Return("return")

	// Soft reset.
	sr := b.Handler("pcnet_soft_reset")
	sre := sr.Block("entry")
	stopv := sre.Const(CSR0Stop, "STOP")
	sre.Store(csr0, stopv, "s->csr0 = STOP")
	zero := sre.Const(0, "0")
	sre.Store(rcvrc, zero, "s->rcvrc = 0")
	sre.Store(xmtrc, zero, "s->xmtrc = 0")
	sre.IOOut(zero, ir.W16, "iowrite16(0)")
	sre.Return("return")
	_ = irqCb
}

// z2 materializes a zero constant in a block.
func z2(blk *ir.BlockBuilder) ir.Temp { return blk.Const(0, "0") }

// buildInit emits initialization-block processing: DMA-read the guest's
// init block and latch mode, ring bases, ring lengths, and the station
// address, then signal IDON.
func buildInit(b *ir.Builder, opts Options, csr0, mode, rcvrl, xmtrl, rdra, tdra, rcvrc, xmtrc, iaddr, irqCb, aprom ir.FieldID) {
	h := b.Handler("pcnet_init")
	e := h.Block("entry")
	a := e.Load(iaddr, "addr = s->iaddr")

	rd16 := func(off uint64, stmt string) ir.Temp {
		o := e.Const(off, "off")
		ao := e.Arith(ir.ALUAdd, a, o, ir.W32, false, "addr + off")
		return e.DMARead(ao, ir.W16, stmt)
	}
	rd32 := func(off uint64, stmt string) ir.Temp {
		o := e.Const(off, "off")
		ao := e.Arith(ir.ALUAdd, a, o, ir.W32, false, "addr + off")
		return e.DMARead(ao, ir.W32, stmt)
	}

	m := rd16(0, "mode = ldw(initb)")
	e.Store(mode, m, "s->mode = mode")
	rl := rd16(2, "rlen = ldw(initb+2)")
	if opts.Fix7909 {
		// max(rlen, 1) in branch-free form so the fix adds no new
		// training-sensitive arms: rlen + (rlen == 0).
		z0 := e.Const(0, "0")
		one := e.Const(1, "1")
		neg := e.Arith(ir.ALUSub, z0, rl, ir.W32, false, "-rlen")
		orv := e.Arith(ir.ALUOr, rl, neg, ir.W32, false, "rlen | -rlen")
		sh := e.Const(31, "31")
		nz := e.Arith(ir.ALUShr, orv, sh, ir.W32, false, "(rlen | -rlen) >> 31")
		isZero := e.Arith(ir.ALUXor, nz, one, ir.W32, false, "rlen == 0 ? 1 : 0")
		adj := e.Arith(ir.ALUAdd, rl, isZero, ir.W16, false, "rlen + (rlen==0) /* CVE-2016-7909 fix */")
		e.Store(rcvrl, adj, "s->rcvrl = max(rlen, 1)")
	} else {
		e.Store(rcvrl, rl, "s->rcvrl = rlen /* 0 allowed: CVE-2016-7909 */")
	}
	tl := rd16(4, "tlen = ldw(initb+4)")
	e.Store(xmtrl, tl, "s->xmtrl = tlen")
	ra := rd32(8, "rdra = ldl(initb+8)")
	e.Store(rdra, ra, "s->rdra = rdra")
	ta := rd32(12, "tdra = ldl(initb+12)")
	e.Store(tdra, ta, "s->tdra = tdra")
	z := e.Const(0, "0")
	e.Store(rcvrc, z, "s->rcvrc = 0")
	e.Store(xmtrc, z, "s->xmtrc = 0")
	// Latch the station address bytes.
	for i := uint64(0); i < 6; i++ {
		o := e.Const(16+i, "off")
		ao := e.Arith(ir.ALUAdd, a, o, ir.W32, false, "addr + 16 + i")
		mb := e.DMARead(ao, ir.W8, "mac[i] = ldb(initb+16+i)")
		ix := e.Const(i, "i")
		e.BufStore(aprom, ix, mb, ir.W8, false, "s->aprom[i] = mac[i]")
	}
	c := e.Load(csr0, "c = s->csr0")
	done := e.Const(CSR0IDON|CSR0INTR, "IDON|INTR")
	c2 := e.Arith(ir.ALUOr, c, done, ir.W16, false, "c | IDON | INTR")
	e.Store(csr0, c2, "s->csr0 |= IDON | INTR")
	e.CallPtr(irqCb, "pcnet_update_irq(s)")
	e.Return("return")
}
