package pcnet

import "sedspec/internal/ir"

// buildTransmit emits descriptor-ring transmission: walk owned TMDs,
// accumulate chunks into the frame buffer at xmit_pos (the CVE-2015-7512
// site), and on end-of-packet either loop the frame back through the
// receive path or send it to the wire.
func buildTransmit(b *ir.Builder, opts Options, buffer, xmitPos, csr0, mode, xmtrl, tdra, xmtrc, irqCb ir.FieldID) {
	h := b.Handler("pcnet_transmit")

	e := h.Block("entry")
	c := e.Load(csr0, "c = s->csr0")
	txon := e.Const(CSR0TXON, "TXON")
	on := e.Arith(ir.ALUAnd, c, txon, ir.W16, false, "c & TXON")
	z := e.Const(0, "0")
	e.Branch(on, ir.RelEQ, z, ir.W16, false, "if (!(s->csr0 & TXON))", "off", "loop")
	h.Block("off").Return("return")

	l := h.Block("loop")
	slot := l.Load(xmtrc, "slot = s->xmtrc")
	sixteen := l.Const(16, "16")
	off := l.Arith(ir.ALUMul, slot, sixteen, ir.W32, false, "slot * 16")
	base := l.Load(tdra, "base = s->tdra")
	desc := l.Arith(ir.ALUAdd, base, off, ir.W32, false, "desc = base + slot*16")
	fo := l.Const(DescFlags, "4")
	fa := l.Arith(ir.ALUAdd, desc, fo, ir.W32, false, "desc + 4")
	flags := l.DMARead(fa, ir.W32, "flags = ldl(desc + 4)")
	own := l.Const(DescOWN, "TMD_OWN")
	ob := l.Arith(ir.ALUAnd, flags, own, ir.W32, false, "flags & OWN")
	zl := l.Const(0, "0")
	l.Branch(ob, ir.RelEQ, zl, ir.W32, false, "if (!(flags & OWN))", "done", "take")

	h.Block("done").Return("return")

	t := h.Block("take")
	ba := t.DMARead(desc, ir.W32, "baddr = ldl(desc)")
	lo := t.Const(DescLen, "8")
	la := t.Arith(ir.ALUAdd, desc, lo, ir.W32, false, "desc + 8")
	blen0 := t.DMARead(la, ir.W32, "blen = ldl(desc + 8)")
	lm := t.Const(0xFFFF, "0xffff")
	blen := t.Arith(ir.ALUAnd, blen0, lm, ir.W32, false, "blen & 0xffff")
	pos := t.Load(xmitPos, "pos = s->xmit_pos")
	if opts.Fix7512 {
		// Upstream fix: reject chunks that would overflow the buffer
		// (keeping room for the 4-byte FCS).
		sum := t.Arith(ir.ALUAdd, pos, blen, ir.W32, false, "pos + blen")
		cap4 := t.Const(BufSize-CRCSize, "sizeof(buffer) - 4")
		t.Branch(sum, ir.RelGT, cap4, ir.W32, false,
			"if (pos + blen > sizeof(buffer) - 4) /* CVE-2015-7512 fix */", "tx_drop", "tx_copy")
		dr := h.Block("tx_drop")
		zz := dr.Const(0, "0")
		dr.Store(xmitPos, zz, "s->xmit_pos = 0 /* abort frame */")
		dr.Jump("writeback", "goto writeback")
	} else {
		t.Jump("tx_copy", "/* no capacity check: CVE-2015-7512 */")
	}

	cp := h.Block("tx_copy")
	cp.DMAToBuf(buffer, pos, ba, blen, false, "memcpy(s->buffer + pos, guest(baddr), blen)")
	np := cp.Arith(ir.ALUAdd, pos, blen, ir.W32, false, "pos + blen")
	cp.Store(xmitPos, np, "s->xmit_pos = pos + blen")
	cp.Jump("writeback", "goto writeback")

	wb := h.Block("writeback")
	inv := wb.Const(0xFFFF_FFFF^uint64(DescOWN), "~OWN")
	cleared := wb.Arith(ir.ALUAnd, flags, inv, ir.W32, false, "flags & ~OWN")
	wb.DMAWrite(fa, cleared, ir.W32, "stl(desc + 4, flags & ~OWN)")
	enp := wb.Const(DescENP, "TMD_ENP")
	eb := wb.Arith(ir.ALUAnd, flags, enp, ir.W32, false, "flags & ENP")
	zw := wb.Const(0, "0")
	wb.Branch(eb, ir.RelNE, zw, ir.W32, false, "if (flags & ENP)", "complete", "advance")

	cm := h.Block("complete")
	md := cm.Load(mode, "m = s->mode")
	lb := cm.Const(ModeLoop, "MODE_LOOP")
	lbb := cm.Arith(ir.ALUAnd, md, lb, ir.W16, false, "m & LOOP")
	zc := cm.Const(0, "0")
	cm.Branch(lbb, ir.RelNE, zc, ir.W16, false, "if (CSR_LOOP(s))", "lo_back", "wire_tx")

	lbk := h.Block("lo_back")
	lbk.Call("pcnet_rx_deliver", "pcnet_receive(s, s->buffer, s->xmit_pos)")
	lbk.Jump("tx_fin", "goto fin")

	// Wire transmit consults the backend link state — a value derivable
	// neither from device state nor I/O data, so the specification keeps
	// it as a sync point (paper §V-D).
	wt := h.Block("wire_tx")
	lk := wt.EnvRead(ir.EnvLink, "up = qemu_get_queue(s->nic)->link_down == 0")
	zl2 := wt.Const(0, "0")
	wt.Branch(lk, ir.RelNE, zl2, ir.W8, false, "if (link up)", "wire_send", "wire_drop")
	wsnd := h.Block("wire_send")
	wp := wsnd.Load(xmitPos, "n = s->xmit_pos")
	wsnd.Work(wp, "qemu_send_packet(s->nic, s->buffer, n)")
	wsnd.Jump("tx_fin", "goto fin")
	wdrp := h.Block("wire_drop")
	wdrp.Jump("tx_fin", "goto fin /* carrier lost: frame dropped */")

	fin := h.Block("tx_fin")
	zz := fin.Const(0, "0")
	fin.Store(xmitPos, zz, "s->xmit_pos = 0")
	cc := fin.Load(csr0, "c = s->csr0")
	ti := fin.Const(CSR0TINT|CSR0INTR, "TINT|INTR")
	c2 := fin.Arith(ir.ALUOr, cc, ti, ir.W16, false, "c | TINT | INTR")
	fin.Store(csr0, c2, "s->csr0 |= TINT | INTR")
	fin.CallPtr(irqCb, "pcnet_update_irq(s)")
	fin.Jump("advance", "goto advance")

	adv := h.Block("advance")
	s2 := adv.Load(xmtrc, "slot = s->xmtrc")
	one := adv.Const(1, "1")
	s3 := adv.Arith(ir.ALUAdd, s2, one, ir.W16, false, "slot + 1")
	xl := adv.Load(xmtrl, "n = s->xmtrl")
	adv.Branch(s3, ir.RelGE, xl, ir.W16, false, "if (slot + 1 >= s->xmtrl)", "wrap", "nowrap")
	wr := h.Block("wrap")
	zz2 := wr.Const(0, "0")
	wr.Store(xmtrc, zz2, "s->xmtrc = 0")
	wr.Jump("loop", "continue")
	nw := h.Block("nowrap")
	nw.Store(xmtrc, s3, "s->xmtrc = slot + 1")
	nw.Jump("loop", "continue")
}

// buildReceive emits frame reception. The delivery path (FCS append, ring
// scan, DMA to the guest) is inlined into both entry points so that the
// frame-size value keeps its real provenance: on the wire path it is a
// temporary derived from the backend frame length (which is why the
// parameter check cannot see CVE-2015-7504's overflow), while on the
// loopback path it is the device-state parameter xmit_pos.
func buildReceive(b *ir.Builder, opts Options, buffer, csr0, rcvrl, rdra, rcvrc, irqCb, xmitPos, rxTries ir.FieldID) {
	// Wire-side entry: frame arrives from the network backend.
	hw := b.Handler("pcnet_receive")
	e := hw.Block("entry")
	c := e.Load(csr0, "c = s->csr0")
	rxon := e.Const(CSR0RXON, "RXON")
	on := e.Arith(ir.ALUAnd, c, rxon, ir.W16, false, "c & RXON")
	ze := e.Const(0, "0")
	e.Branch(on, ir.RelEQ, ze, ir.W16, false, "if (!(s->csr0 & RXON))", "rx_off", "rx_take")
	hw.Block("rx_off").Return("return /* not receiving */")

	tk := hw.Block("rx_take")
	wsize := tk.IOLen("size = frame length")
	zi := tk.Const(0, "0")
	tk.IOToBuf(buffer, zi, wsize, false, "memcpy(s->buffer, buf, size)")
	emitDeliver(hw, tk, wsize, opts, buffer, csr0, rcvrl, rdra, rcvrc, irqCb, rxTries)

	// Loopback entry: the frame is already staged in the buffer by the
	// transmit path; its length is xmit_pos.
	hd := b.Handler("pcnet_rx_deliver")
	de := hd.Block("entry")
	lsize := de.Load(xmitPos, "size = s->xmit_pos")
	emitDeliver(hd, de, lsize, opts, buffer, csr0, rcvrl, rdra, rcvrc, irqCb, rxTries)
}

// emitDeliver appends the frame-delivery blocks to a handler, starting
// from entry: FCS append (the CVE-2015-7504 site), receive-ring scan (the
// CVE-2016-7909 loop), and guest DMA with interrupt delivery. size is a
// handler-scoped temp valid across the emitted blocks.
func emitDeliver(h *ir.HandlerBuilder, entry *ir.BlockBuilder, size ir.Temp, opts Options,
	buffer, csr0, rcvrl, rdra, rcvrc, irqCb, rxTries ir.FieldID) {

	if opts.Fix7504 {
		cap4 := entry.Const(BufSize-CRCSize, "sizeof(buffer) - 4")
		entry.Branch(size, ir.RelGT, cap4, ir.W32, false,
			"if (size > sizeof(buffer) - 4) /* CVE-2015-7504 fix */", "rx_drop", "rx_crc")
		dr := h.Block("rx_drop")
		dr.Return("return /* oversized frame dropped */")
	} else {
		entry.Jump("rx_crc", "/* no FCS bound: CVE-2015-7504 */")
	}

	// FCS append: 4 bytes derived from the frame tail (standing in for
	// the attacker-groundable CRC). With size == 4096 the stores land on
	// irq_cb.
	crc := h.Block("rx_crc")
	four := crc.Const(4, "4")
	tail := crc.Arith(ir.ALUSub, size, four, ir.W32, false, "size - 4")
	for k := uint64(0); k < CRCSize; k++ {
		ko := crc.Const(k, "k")
		si := crc.Arith(ir.ALUAdd, tail, ko, ir.W32, false, "size - 4 + k")
		cv := crc.BufLoad(buffer, si, ir.W32, false, "crc[k] = s->buffer[size - 4 + k]")
		di := crc.Arith(ir.ALUAdd, size, ko, ir.W32, false, "size + k")
		crc.BufStore(buffer, di, cv, ir.W32, false, "s->buffer[size + k] = crc[k]")
	}
	// Arm the ring-scan countdown with the ring length. With RCVRL == 0
	// the first 32-bit decrement wraps to 0xFFFFFFFF and the scan spins
	// for ~2^32 iterations: CVE-2016-7909.
	rl := crc.Load(rcvrl, "i = s->rcvrl")
	crc.Store(rxTries, rl, "i = s->rcvrl")
	crc.Jump("rx_scan", "goto scan")

	sc := h.Block("rx_scan")
	slot := sc.Load(rcvrc, "slot = s->rcvrc")
	sixteen := sc.Const(16, "16")
	off := sc.Arith(ir.ALUMul, slot, sixteen, ir.W32, false, "slot * 16")
	base := sc.Load(rdra, "base = s->rdra")
	desc := sc.Arith(ir.ALUAdd, base, off, ir.W32, false, "desc = base + slot*16")
	fo := sc.Const(DescFlags, "4")
	fa := sc.Arith(ir.ALUAdd, desc, fo, ir.W32, false, "desc + 4")
	flags := sc.DMARead(fa, ir.W32, "flags = ldl(desc + 4)")
	own := sc.Const(DescOWN, "RMD_OWN")
	ob := sc.Arith(ir.ALUAnd, flags, own, ir.W32, false, "flags & OWN")
	zs := sc.Const(0, "0")
	sc.Branch(ob, ir.RelNE, zs, ir.W32, false, "if (flags & OWN)", "rx_found", "rx_next")

	nx := h.Block("rx_next")
	s2 := nx.Load(rcvrc, "slot")
	one := nx.Const(1, "1")
	s3 := nx.Arith(ir.ALUAdd, s2, one, ir.W16, false, "slot + 1")
	rl2 := nx.Load(rcvrl, "n = s->rcvrl")
	nx.Branch(s3, ir.RelGE, rl2, ir.W16, false, "if (slot + 1 >= s->rcvrl)", "rx_wrap", "rx_step")
	wr := h.Block("rx_wrap")
	zw := wr.Const(0, "0")
	wr.Store(rcvrc, zw, "s->rcvrc = 0")
	wr.Jump("rx_count", "goto count")
	st := h.Block("rx_step")
	st.Store(rcvrc, s3, "s->rcvrc = slot + 1")
	st.Jump("rx_count", "goto count")

	ct := h.Block("rx_count")
	i0 := ct.Load(rxTries, "i")
	onec := ct.Const(1, "1")
	i1 := ct.Arith(ir.ALUSub, i0, onec, ir.W32, false, "i - 1 /* wraps when rcvrl == 0 */")
	ct.Store(rxTries, i1, "i = i - 1")
	zc := ct.Const(0, "0")
	ct.Branch(i1, ir.RelNE, zc, ir.W32, false, "while (i != 0)", "rx_scan", "rx_none")

	h.Block("rx_none").Return("return /* no descriptor: frame lost */")

	fd := h.Block("rx_found")
	ba := fd.DMARead(desc, ir.W32, "baddr = ldl(desc)")
	four2 := fd.Const(CRCSize, "4")
	tot := fd.Arith(ir.ALUAdd, size, four2, ir.W32, false, "size + 4")
	zi2 := fd.Const(0, "0")
	fd.DMAFromBuf(buffer, zi2, ba, tot, false, "memcpy(guest(baddr), s->buffer, size + 4)")
	fd.Work(tot, "deliver frame")
	inv := fd.Const(0xFFFF_FFFF^uint64(DescOWN), "~OWN")
	cl := fd.Arith(ir.ALUAnd, flags, inv, ir.W32, false, "flags & ~OWN")
	fd.DMAWrite(fa, cl, ir.W32, "stl(desc + 4, flags & ~OWN)")
	so := fd.Const(DescStat, "12")
	sa := fd.Arith(ir.ALUAdd, desc, so, ir.W32, false, "desc + 12")
	fd.DMAWrite(sa, tot, ir.W32, "stl(desc + 12, size + 4)")
	// Leave rcvrc at the consumed slot's successor.
	s4 := fd.Load(rcvrc, "slot")
	one3 := fd.Const(1, "1")
	s5 := fd.Arith(ir.ALUAdd, s4, one3, ir.W16, false, "slot + 1")
	rl3 := fd.Load(rcvrl, "n")
	fd.Branch(s5, ir.RelGE, rl3, ir.W16, false, "if (slot + 1 >= s->rcvrl)", "rx_adv_wrap", "rx_adv")
	aw := h.Block("rx_adv_wrap")
	za := aw.Const(0, "0")
	aw.Store(rcvrc, za, "s->rcvrc = 0")
	aw.Jump("rx_intr", "goto intr")
	ad := h.Block("rx_adv")
	ad.Store(rcvrc, s5, "s->rcvrc = slot + 1")
	ad.Jump("rx_intr", "goto intr")

	in := h.Block("rx_intr")
	cc := in.Load(csr0, "c = s->csr0")
	ri := in.Const(CSR0RINT|CSR0INTR, "RINT|INTR")
	c2 := in.Arith(ir.ALUOr, cc, ri, ir.W16, false, "c | RINT | INTR")
	in.Store(csr0, c2, "s->csr0 |= RINT | INTR")
	in.CallPtr(irqCb, "pcnet_update_irq(s)")
	in.Return("return")
}

// buildHelpers emits the interrupt callback target and the attacker
// gadget.
func buildHelpers(b *ir.Builder, csr0 ir.FieldID) {
	irq := b.Handler("pcnet_update_irq")
	e := irq.Block("entry")
	e.IRQRaise("qemu_set_irq(s->irq, 1)")
	e.Return("return")

	g := b.Handler("host_gadget")
	gb := g.Block("entry")
	pw := gb.Const(0xFFFF, "0xffff")
	gb.Store(csr0, pw, "/* attacker-controlled execution */")
	gb.Return("return")
}
