// Package fuzzer provides the coverage instrumentation and random I/O
// drivers behind the paper's effective-coverage metric (§VII-B1): fuzzing
// approximates the set of code paths reachable by legitimate behaviour,
// against which the execution specification's coverage is measured. It
// also hammers devices with raw random I/O as a robustness harness.
package fuzzer

import (
	"sedspec/internal/interp"
	"sedspec/internal/ir"
	"sedspec/internal/machine"
	"sedspec/internal/simclock"
)

// coverObserver records distinct executed blocks.
type coverObserver struct {
	set map[ir.BlockRef]bool
}

func (o *coverObserver) Observe(ev interp.ObsEvent) {
	if ev.IndirectField >= 0 {
		return
	}
	o.set[ev.Block] = true
}

// Blocks runs drive with block-coverage instrumentation installed on the
// device and returns the set of device-region blocks executed.
func Blocks(att *machine.Attached, drive func() error) (map[ir.BlockRef]bool, error) {
	obs := &coverObserver{set: make(map[ir.BlockRef]bool)}
	in := att.Interp()
	in.SetObserver(obs)
	defer in.SetObserver(nil)
	err := drive()

	prog := att.Dev().Program()
	out := make(map[ir.BlockRef]bool, len(obs.set))
	for ref := range obs.set {
		if prog.Handlers[ref.Handler].Region == ir.RegionDevice {
			out[ref] = true
		}
	}
	return out, err
}

// Hammer throws n random raw I/O requests at the device: random offsets in
// the window, random read/write, random payload sizes. Device faults are
// expected and counted; the harness asserts only that the emulator itself
// stays sound. Returns (completed, faulted).
func Hammer(att *machine.Attached, space interp.Space, winBase, winSize uint64, seed uint64, n int) (int, int) {
	rng := simclock.NewRand(seed)
	completed, faulted := 0, 0
	// Tighten the step budget for the hammering only: a random request
	// that spins deserves a fast fault, but later learning and checking
	// passes on the same attachment must keep the budget they had.
	in := att.Interp()
	prev := in.StepBudget()
	in.SetStepBudget(100_000)
	defer in.SetStepBudget(prev)
	// One payload buffer for the whole run; DispatchDirect does not retain
	// the request, so the bytes may be overwritten next iteration.
	var payload [8]byte
	for i := 0; i < n; i++ {
		addr := winBase + uint64(rng.Intn(int(winSize)))
		var req *interp.Request
		if rng.Bool(0.6) {
			p := payload[:rng.Intn(9)]
			for j := range p {
				p[j] = byte(rng.Uint64())
			}
			req = interp.NewWrite(space, addr, p)
		} else {
			req = interp.NewRead(space, addr)
		}
		res, err := att.DispatchDirect(req)
		if err != nil {
			continue // machine halted or blocked
		}
		completed++
		if res.Fault != nil {
			faulted++
			att.Dev().Reset() // crash-restart, like respawning QEMU
		}
	}
	return completed, faulted
}
