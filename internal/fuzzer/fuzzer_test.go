package fuzzer_test

import (
	"testing"

	"sedspec"
	"sedspec/internal/devices/ehci"
	"sedspec/internal/devices/fdc"
	"sedspec/internal/devices/pcnet"
	"sedspec/internal/devices/scsi"
	"sedspec/internal/devices/sdhci"
	"sedspec/internal/fuzzer"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
)

func TestBlocksCoversDeviceRegionsOnly(t *testing.T) {
	m := machine.New()
	dev := fdc.New(fdc.Options{})
	att := m.Attach(dev, machine.WithPIO(0, fdc.PortCount))
	g := fdc.NewGuest(sedspec.NewDriver(att))
	blocks, err := fuzzer.Blocks(att, func() error {
		if err := g.Reset(); err != nil {
			return err
		}
		return g.Recalibrate()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Fatal("no blocks covered")
	}
	prog := dev.Program()
	for ref := range blocks {
		if prog.Handlers[ref.Handler].Region != 0 {
			t.Errorf("non-device block %v in coverage (handler %s)",
				ref, prog.Handlers[ref.Handler].Name)
		}
	}
}

// TestHammerAllDevices is the robustness harness: tens of thousands of raw
// random requests against every device. The emulator must never panic;
// device faults (crash-restart) are expected and fine.
func TestHammerAllDevices(t *testing.T) {
	cases := []struct {
		name  string
		dev   machine.Device
		space interp.Space
		size  uint64
	}{
		{"fdc", fdc.New(fdc.Options{}), interp.SpacePIO, fdc.PortCount},
		{"pcnet", pcnet.New(pcnet.Options{}), interp.SpacePIO, pcnet.PortCount},
		{"scsi", scsi.New(scsi.Options{}), interp.SpacePIO, scsi.PortCount},
		{"sdhci", sdhci.New(sdhci.Options{}), interp.SpaceMMIO, sdhci.RegionSize},
		{"ehci", ehci.New(ehci.Options{}), interp.SpaceMMIO, ehci.RegionSize},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			m := machine.New(machine.WithMemory(1 << 20))
			att := m.Attach(c.dev, machine.WithPIO(0, c.size), machine.WithMMIO(0, c.size))
			completed, faulted := fuzzer.Hammer(att, c.space, 0, c.size, 42, 8000)
			if completed == 0 {
				t.Fatal("hammer made no progress")
			}
			t.Logf("%s: %d completed, %d faults", c.name, completed, faulted)
		})
	}
}

// TestHammerRestoresStepBudget: hammering tightens the interpreter's step
// budget to fault runaway dispatches quickly, but the attachment is reused
// for learning and checking afterwards — the previous budget must survive.
func TestHammerRestoresStepBudget(t *testing.T) {
	m := machine.New(machine.WithMemory(1 << 20))
	att := m.Attach(fdc.New(fdc.Options{}), machine.WithPIO(0, fdc.PortCount))
	if got := att.Interp().StepBudget(); got != interp.DefaultStepBudget {
		t.Fatalf("fresh budget = %d, want %d", got, interp.DefaultStepBudget)
	}
	fuzzer.Hammer(att, interp.SpacePIO, 0, fdc.PortCount, 9, 50)
	if got := att.Interp().StepBudget(); got != interp.DefaultStepBudget {
		t.Errorf("budget after Hammer = %d, want %d restored", got, interp.DefaultStepBudget)
	}
	// A custom budget set before hammering is restored too.
	att.Interp().SetStepBudget(777)
	fuzzer.Hammer(att, interp.SpacePIO, 0, fdc.PortCount, 9, 50)
	if got := att.Interp().StepBudget(); got != 777 {
		t.Errorf("budget after Hammer = %d, want 777 restored", got)
	}
}

// TestHammerPatchedDevicesFaultLess verifies that the patched variants
// shrug off random input at least as well as the vulnerable ones.
func TestHammerPatchedDevicesFaultLess(t *testing.T) {
	run := func(dev machine.Device, space interp.Space, size uint64) int {
		m := machine.New(machine.WithMemory(1 << 20))
		att := m.Attach(dev, machine.WithPIO(0, size), machine.WithMMIO(0, size))
		_, faulted := fuzzer.Hammer(att, space, 0, size, 1234, 6000)
		return faulted
	}
	vuln := run(fdc.New(fdc.Options{}), interp.SpacePIO, fdc.PortCount)
	fixed := run(fdc.New(fdc.Options{FixVenom: true}), interp.SpacePIO, fdc.PortCount)
	if fixed > vuln {
		t.Errorf("patched fdc faulted more than vulnerable one: %d > %d", fixed, vuln)
	}
}
