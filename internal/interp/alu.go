package interp

import "sedspec/internal/ir"

// Flags mirrors the arithmetic flag bits the parameter check strategy
// consults (paper §VI-A): carry for unsigned wrap, overflow for signed
// wrap, plus zero and sign.
type Flags struct {
	Carry    bool `json:"carry"`
	Overflow bool `json:"overflow"`
	Zero     bool `json:"zero"`
	Sign     bool `json:"sign"`
}

// OverflowFor reports whether the flags indicate an overflow for a value of
// the given signedness, which is exactly the parameter check's integer
// overflow test.
func (f Flags) OverflowFor(signed bool) bool {
	if signed {
		return f.Overflow
	}
	return f.Carry
}

// ALUExec evaluates a binary ALU operation at the given width, returning
// the truncated result and the resulting flags. It is shared between the
// interpreter (real device execution) and the ES-Checker (specification
// simulation) so both observe identical flag semantics. divZero reports a
// division or modulo by zero; the result is then zero and flags are clear,
// and the caller decides how to fault.
func ALUExec(alu ir.ALU, a, b uint64, w ir.Width, signed bool) (res uint64, fl Flags, divZero bool) {
	return ALUExecPre(alu, a, b, w.Mask(), uint(w.Bits()), signed)
}

// ALUExecPre is ALUExec with the width pre-resolved: mask must be
// w.Mask() and bits w.Bits(). The ES-Checker's threaded engine compiles
// both into instruction immediates at Seal time so the hot path never
// re-derives them; the results are bit-for-bit those of ALUExec. Sign
// extension uses the xor trick: for v truncated to the width,
// (v ^ signBit) - signBit is the sign-extended value at every width
// including 64 bits.
func ALUExecPre(alu ir.ALU, a, b, mask uint64, bits uint, signed bool) (res uint64, fl Flags, divZero bool) {
	a &= mask
	b &= mask
	signBit := uint64(1) << (bits - 1)

	switch alu {
	case ir.ALUAdd:
		full := a + b
		res = full & mask
		fl.Carry = full > mask || (mask == ^uint64(0) && full < a)
		sa := int64((a ^ signBit) - signBit)
		sb := int64((b ^ signBit) - signBit)
		sr := int64((res ^ signBit) - signBit)
		fl.Overflow = (sa >= 0) == (sb >= 0) && (sr >= 0) != (sa >= 0)
	case ir.ALUSub:
		res = (a - b) & mask
		fl.Carry = a < b
		sa := int64((a ^ signBit) - signBit)
		sb := int64((b ^ signBit) - signBit)
		sr := int64((res ^ signBit) - signBit)
		fl.Overflow = (sa >= 0) != (sb >= 0) && (sr >= 0) != (sa >= 0)
	case ir.ALUMul:
		hi, lo := mul64(a, b)
		res = lo & mask
		fl.Carry = hi != 0 || lo > mask
		if signed {
			sa := int64((a ^ signBit) - signBit)
			sb := int64((b ^ signBit) - signBit)
			prod := sa * sb
			fl.Overflow = (sa != 0 && prod/sa != sb) ||
				prod > int64(mask>>1) || prod < -int64(mask>>1)-1
		} else {
			fl.Overflow = fl.Carry
		}
	case ir.ALUDiv:
		if b == 0 {
			return 0, Flags{}, true
		}
		if signed {
			sa := int64((a ^ signBit) - signBit)
			sb := int64((b ^ signBit) - signBit)
			res = uint64(sa/sb) & mask
		} else {
			res = (a / b) & mask
		}
	case ir.ALUMod:
		if b == 0 {
			return 0, Flags{}, true
		}
		if signed {
			sa := int64((a ^ signBit) - signBit)
			sb := int64((b ^ signBit) - signBit)
			res = uint64(sa%sb) & mask
		} else {
			res = (a % b) & mask
		}
	case ir.ALUAnd:
		res = a & b
	case ir.ALUOr:
		res = a | b
	case ir.ALUXor:
		res = a ^ b
	case ir.ALUShl:
		sh := b & 63
		if sh >= uint64(bits) {
			res = 0
			fl.Carry = a != 0
		} else {
			full := a << sh
			res = full & mask
			fl.Carry = full>>bits != 0 || (mask == ^uint64(0) && sh > 0 && a>>(64-sh) != 0)
		}
	case ir.ALUShr:
		sh := b & 63
		if signed {
			if sh >= uint64(bits) {
				sh = uint64(bits) - 1
			}
			sa := int64((a ^ signBit) - signBit)
			res = uint64(sa>>sh) & mask
		} else if sh >= uint64(bits) {
			res = 0
		} else {
			res = (a >> sh) & mask
		}
	}

	fl.Zero = res == 0
	fl.Sign = res&signBit != 0
	return res, fl, false
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const half = 32
	const lower = (uint64(1) << half) - 1
	aLo, aHi := a&lower, a>>half
	bLo, bHi := b&lower, b>>half
	t := aLo * bLo
	lo = t & lower
	c := t >> half
	t = aHi*bLo + c
	c = t >> half
	t2 := aLo*bHi + (t & lower)
	lo |= (t2 & lower) << half
	hi = aHi*bHi + c + (t2 >> half)
	return hi, lo
}
