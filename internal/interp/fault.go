package interp

import (
	"fmt"

	"sedspec/internal/ir"
)

// FaultKind classifies execution faults. Faults on an unprotected device
// stand in for the real-world consequence of exploitation: a crash, a hung
// vCPU thread, or arbitrary code execution in the hypervisor.
type FaultKind uint8

const (
	// FaultArenaEscape is a buffer access beyond the control structure —
	// the simulated equivalent of heap corruption outside the device
	// struct (potential VM escape).
	FaultArenaEscape FaultKind = iota + 1
	// FaultBadCallTarget is an indirect call through a corrupted function
	// pointer that resolves to no legitimate handler.
	FaultBadCallTarget
	// FaultDivZero is a division or modulo by zero.
	FaultDivZero
	// FaultStepBudget means the step budget was exhausted — the simulated
	// equivalent of an emulation infinite loop (denial of service).
	FaultStepBudget
	// FaultStackOverflow is runaway handler recursion.
	FaultStackOverflow
	// FaultDMA is a DMA access outside guest memory.
	FaultDMA
)

func (k FaultKind) String() string {
	switch k {
	case FaultArenaEscape:
		return "arena-escape"
	case FaultBadCallTarget:
		return "bad-call-target"
	case FaultDivZero:
		return "div-zero"
	case FaultStepBudget:
		return "step-budget"
	case FaultStackOverflow:
		return "stack-overflow"
	case FaultDMA:
		return "dma"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// Fault describes an execution fault.
type Fault struct {
	Kind   FaultKind
	Block  ir.BlockRef
	Src    ir.SourceRef
	Detail string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("interp: %s fault at %s (%s)", f.Kind, f.Src, f.Detail)
}

// Result summarizes one dispatched I/O interaction.
type Result struct {
	// Output is the response payload produced via OpIOOut.
	Output []byte
	// Fault is non-nil if execution faulted.
	Fault *Fault
	// Steps is the number of ops plus terminators executed.
	Steps int
	// Blocks is the number of basic blocks executed.
	Blocks int
	// Corruptions counts out-of-bounds buffer accesses that stayed inside
	// the arena (silent neighbouring-field corruption). This is ground
	// truth for the evaluation; real C code has no such counter.
	Corruptions int
	// WorkBytes is the total emulation work requested via OpWork.
	WorkBytes int
}
