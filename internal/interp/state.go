// Package interp executes device programs written in the internal/ir
// instruction set.
//
// The interpreter is the stand-in for QEMU's C device code paths: it runs a
// device's handlers against an arena-backed control structure, keeps x86ish
// arithmetic flags for overflow detection, emits processor-trace events for
// the trace module, and emits observation events for the device-state
// change log. Out-of-bounds buffer accesses inside the arena silently
// corrupt neighbouring fields — exactly the C behaviour the CVE exploits in
// the paper rely on — while accesses escaping the arena fault, standing in
// for a hypervisor crash or compromise.
package interp

import (
	"encoding/binary"
	"fmt"

	"sedspec/internal/ir"
)

// State is the device control structure: the program's fields laid out in a
// flat byte arena like a C struct.
type State struct {
	prog  *ir.Program
	arena []byte
}

// NewState allocates a zeroed control structure for the program.
func NewState(p *ir.Program) *State {
	return &State{prog: p, arena: make([]byte, p.ArenaSize)}
}

// Program returns the program this state belongs to.
func (s *State) Program() *ir.Program { return s.prog }

// Reset zeroes the control structure.
func (s *State) Reset() {
	for i := range s.arena {
		s.arena[i] = 0
	}
}

// Bytes exposes the raw arena. Callers must treat it as read-only.
func (s *State) Bytes() []byte { return s.arena }

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{prog: s.prog, arena: make([]byte, len(s.arena))}
	copy(c.arena, s.arena)
	return c
}

func (s *State) field(fi int) *ir.Field { return &s.prog.Fields[fi] }

// Int reads an integer field's raw value (zero-extended).
func (s *State) Int(fi int) uint64 {
	f := s.field(fi)
	return readLE(s.arena[f.Offset:f.Offset+f.ByteSize], f.Width)
}

// SetInt writes an integer field, truncating to the field width.
func (s *State) SetInt(fi int, v uint64) {
	f := s.field(fi)
	writeLE(s.arena[f.Offset:f.Offset+f.ByteSize], f.Width, v)
}

// IntByName reads an integer field by name; ok is false if absent.
func (s *State) IntByName(name string) (uint64, bool) {
	fi := s.prog.FieldIndex(name)
	if fi < 0 || s.prog.Fields[fi].Kind != ir.FieldInt {
		return 0, false
	}
	return s.Int(fi), true
}

// SetIntByName writes an integer field by name; ok is false if absent.
func (s *State) SetIntByName(name string, v uint64) bool {
	fi := s.prog.FieldIndex(name)
	if fi < 0 || s.prog.Fields[fi].Kind != ir.FieldInt {
		return false
	}
	s.SetInt(fi, v)
	return true
}

// FuncPtr reads a function-pointer field's raw value.
func (s *State) FuncPtr(fi int) uint64 {
	f := s.field(fi)
	return binary.LittleEndian.Uint64(s.arena[f.Offset : f.Offset+8])
}

// SetFuncPtr writes a function-pointer field.
func (s *State) SetFuncPtr(fi int, v uint64) {
	f := s.field(fi)
	binary.LittleEndian.PutUint64(s.arena[f.Offset:f.Offset+8], v)
}

// Buf returns a view of a buffer field's bytes.
func (s *State) Buf(fi int) []byte {
	f := s.field(fi)
	return s.arena[f.Offset : f.Offset+f.Size]
}

// FieldValue reads any field's representative value: raw integer for int
// and func fields, length for buffers. Used by observation snapshots.
func (s *State) FieldValue(fi int) uint64 {
	f := s.field(fi)
	switch f.Kind {
	case ir.FieldInt:
		return s.Int(fi)
	case ir.FieldFunc:
		return s.FuncPtr(fi)
	case ir.FieldBuf:
		return uint64(f.Size)
	default:
		return 0
	}
}

// String summarizes the state for diagnostics.
func (s *State) String() string {
	return fmt.Sprintf("state(%s, %dB)", s.prog.Name, len(s.arena))
}

func readLE(b []byte, w ir.Width) uint64 {
	switch w {
	case ir.W8:
		return uint64(b[0])
	case ir.W16:
		return uint64(binary.LittleEndian.Uint16(b))
	case ir.W32:
		return uint64(binary.LittleEndian.Uint32(b))
	case ir.W64:
		return binary.LittleEndian.Uint64(b)
	default:
		return 0
	}
}

func writeLE(b []byte, w ir.Width, v uint64) {
	switch w {
	case ir.W8:
		b[0] = byte(v)
	case ir.W16:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case ir.W32:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case ir.W64:
		binary.LittleEndian.PutUint64(b, v)
	}
}
