package interp

import (
	"errors"
	"testing"
	"testing/quick"

	"sedspec/internal/ir"
)

// testEnv records machine-service calls and backs DMA with a flat page.
type testEnv struct {
	mem       []byte
	irqRaised int
	irqLower  int
	work      int
	dmaErr    error
}

func newTestEnv(size int) *testEnv { return &testEnv{mem: make([]byte, size)} }

func (e *testEnv) DMARead(addr uint64, buf []byte) error {
	if e.dmaErr != nil {
		return e.dmaErr
	}
	if addr+uint64(len(buf)) > uint64(len(e.mem)) {
		return errors.New("dma read out of range")
	}
	copy(buf, e.mem[addr:])
	return nil
}

func (e *testEnv) DMAWrite(addr uint64, buf []byte) error {
	if e.dmaErr != nil {
		return e.dmaErr
	}
	if addr+uint64(len(buf)) > uint64(len(e.mem)) {
		return errors.New("dma write out of range")
	}
	copy(e.mem[addr:], buf)
	return nil
}

func (e *testEnv) RaiseIRQ()                 { e.irqRaised++ }
func (e *testEnv) LowerIRQ()                 { e.irqLower++ }
func (e *testEnv) Work(n int)                { e.work += n }
func (e *testEnv) ReadEnv(ir.EnvKind) uint64 { return 1 }

// buildCounter builds a device with a register write port and a buffer port
// with a deliberately missing bounds check (a miniature Venom).
func buildCounter(t testing.TB, bounded bool) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("counter")
	fifo := b.Buf("fifo", 8)
	pos := b.Int("pos", ir.W16)
	guard := b.Int("guard", ir.W32) // the field an overflow clobbers

	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	addr := e.IOAddr("addr = req->addr")
	e.Switch(addr, "switch (addr)", "out", ir.Case(0, "push"))

	p := h.Block("push")
	v := p.IOIn(ir.W8, "v = ioread8()")
	pv := p.Load(pos, "p = s->pos")
	if bounded {
		lim := p.Const(8, "8")
		p.Branch(pv, ir.RelGE, lim, ir.W16, false, "if (p >= 8)", "out", "store")
		st := h.Block("store")
		st.BufStore(fifo, pv, v, ir.W16, false, "s->fifo[p] = v")
		one := st.Const(1, "1")
		p2 := st.Arith(ir.ALUAdd, pv, one, ir.W16, false, "p + 1")
		st.Store(pos, p2, "s->pos = p + 1")
		st.Jump("out", "goto out")
	} else {
		p.BufStore(fifo, pv, v, ir.W16, false, "s->fifo[p] = v")
		one := p.Const(1, "1")
		p2 := p.Arith(ir.ALUAdd, pv, one, ir.W16, false, "p + 1")
		p.Store(pos, p2, "s->pos = p + 1")
		p.Jump("out", "goto out")
	}

	h.Block("out").Exit().Halt("return")
	_ = guard
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog
}

func push(t testing.TB, in *Interp, v byte) *Result {
	t.Helper()
	res := in.Dispatch(NewWrite(SpacePIO, 0, []byte{v}))
	if res.Fault != nil {
		t.Fatalf("unexpected fault: %v", res.Fault)
	}
	return res
}

func TestBasicStoreAndLoad(t *testing.T) {
	prog := buildCounter(t, true)
	st := NewState(prog)
	in := New(prog, st, nil)

	push(t, in, 0xAB)
	if got := st.Buf(prog.FieldIndex("fifo"))[0]; got != 0xAB {
		t.Errorf("fifo[0] = %#x, want 0xAB", got)
	}
	if got, _ := st.IntByName("pos"); got != 1 {
		t.Errorf("pos = %d, want 1", got)
	}
}

func TestBoundedDeviceStopsAtLimit(t *testing.T) {
	prog := buildCounter(t, true)
	st := NewState(prog)
	in := New(prog, st, nil)
	for i := 0; i < 20; i++ {
		push(t, in, byte(i))
	}
	if got, _ := st.IntByName("pos"); got != 8 {
		t.Errorf("pos = %d, want 8 (bounds check)", got)
	}
	if got, _ := st.IntByName("guard"); got != 0 {
		t.Errorf("guard corrupted: %#x", got)
	}
}

func TestUnboundedDeviceCorruptsNeighbour(t *testing.T) {
	prog := buildCounter(t, false)
	st := NewState(prog)
	in := New(prog, st, nil)
	var corruptions int
	for i := 0; i < 12; i++ {
		res := in.Dispatch(NewWrite(SpacePIO, 0, []byte{0xEE}))
		if res.Fault != nil {
			t.Fatalf("fault at push %d: %v", i, res.Fault)
		}
		corruptions += res.Corruptions
	}
	// Pushes 8..11 write past fifo: 8,9 clobber pos itself, 10,11 land in
	// guard. All are silent corruption inside the arena, like C.
	if corruptions == 0 {
		t.Fatal("expected arena corruptions, got none")
	}
	if got, _ := st.IntByName("guard"); got == 0 {
		t.Error("guard should have been corrupted by the overflow")
	}
}

func TestArenaEscapeFaults(t *testing.T) {
	prog := buildCounter(t, false)
	st := NewState(prog)
	in := New(prog, st, nil)
	// Force pos far past the arena, then push once.
	st.SetIntByName("pos", 1000)
	res := in.Dispatch(NewWrite(SpacePIO, 0, []byte{1}))
	if res.Fault == nil || res.Fault.Kind != FaultArenaEscape {
		t.Fatalf("fault = %v, want arena-escape", res.Fault)
	}
}

func TestUnknownPortFallsToDefault(t *testing.T) {
	prog := buildCounter(t, true)
	in := New(prog, NewState(prog), nil)
	res := in.Dispatch(NewWrite(SpacePIO, 99, []byte{1}))
	if res.Fault != nil {
		t.Fatalf("fault: %v", res.Fault)
	}
	if got, _ := in.State().IntByName("pos"); got != 0 {
		t.Error("default arm should not store")
	}
}

// buildLooper builds a device whose handler loops until a register reaches
// a bound; with the bug enabled the bound is never reached (CVE-2016-7909
// style infinite loop).
func buildLooper(t testing.TB, buggy bool) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("looper")
	cnt := b.Int("cnt", ir.W32)
	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	e.Jump("loop", "while (...)")
	l := h.Block("loop")
	c := l.Load(cnt, "c = s->cnt")
	var c2 ir.Temp
	if buggy {
		zero := l.Const(0, "0")
		c2 = l.Arith(ir.ALUAdd, c, zero, ir.W32, false, "c += 0 /* bug */")
	} else {
		one := l.Const(1, "1")
		c2 = l.Arith(ir.ALUAdd, c, one, ir.W32, false, "c += 1")
	}
	l.Store(cnt, c2, "s->cnt = c")
	lim := l.Const(100, "100")
	l.Branch(c2, ir.RelLT, lim, ir.W32, false, "if (c < 100)", "loop", "out")
	h.Block("out").Exit().Halt("return")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog
}

func TestStepBudgetCatchesInfiniteLoop(t *testing.T) {
	prog := buildLooper(t, true)
	in := New(prog, NewState(prog), nil)
	in.SetStepBudget(10_000)
	res := in.Dispatch(NewWrite(SpacePIO, 0, nil))
	if res.Fault == nil || res.Fault.Kind != FaultStepBudget {
		t.Fatalf("fault = %v, want step-budget", res.Fault)
	}
}

func TestFiniteLoopCompletes(t *testing.T) {
	prog := buildLooper(t, false)
	in := New(prog, NewState(prog), nil)
	res := in.Dispatch(NewWrite(SpacePIO, 0, nil))
	if res.Fault != nil {
		t.Fatalf("fault: %v", res.Fault)
	}
	if got, _ := in.State().IntByName("cnt"); got != 100 {
		t.Errorf("cnt = %d, want 100", got)
	}
}

// buildCaller builds a device with a function-pointer callback and a
// "gadget" handler standing in for attacker-reachable code.
func buildCaller(t testing.TB) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("caller")
	cb := b.Func("cb")
	pwned := b.Int("pwned", ir.W8)

	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	init := e.FuncValue("legit_cb", "s->cb = legit_cb")
	e.StoreFunc(cb, init, "s->cb = legit_cb")
	e.CallPtr(cb, "s->cb()")
	e.Halt("return")

	lh := b.Handler("legit_cb")
	lb := lh.Block("body")
	lb.IRQRaise("raise irq")
	lb.Return("return")

	gh := b.Handler("gadget")
	gb := gh.Block("body")
	one := gb.Const(1, "1")
	gb.Store(pwned, one, "pwned = 1")
	gb.Return("return")

	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog
}

func TestIndirectCallLegitimate(t *testing.T) {
	prog := buildCaller(t)
	env := newTestEnv(0)
	in := New(prog, NewState(prog), env)
	res := in.Dispatch(NewWrite(SpacePIO, 0, nil))
	if res.Fault != nil {
		t.Fatalf("fault: %v", res.Fault)
	}
	if env.irqRaised != 1 {
		t.Errorf("irqRaised = %d, want 1", env.irqRaised)
	}
}

func TestIndirectCallHijackedToGadget(t *testing.T) {
	prog := buildCaller(t)
	st := NewState(prog)
	in := New(prog, st, nil)
	// An "exploit" pre-corrupts the function pointer to the gadget. The
	// dispatch handler re-initializes it, so instead run a program variant:
	// here we directly exercise the interpreter by corrupting between
	// entry ops — simplest is to point it at the gadget and call that
	// handler index directly through a tampered dispatch.
	gadget := prog.HandlerIndex("gadget")
	st.SetFuncPtr(prog.FieldIndex("cb"), uint64(gadget))
	res := in.Run(gadget, NewWrite(SpacePIO, 0, nil))
	if res.Fault != nil {
		t.Fatalf("fault: %v", res.Fault)
	}
	if got, _ := st.IntByName("pwned"); got != 1 {
		t.Error("gadget should set pwned")
	}
}

func TestIndirectCallCorruptPointerFaults(t *testing.T) {
	b := ir.NewBuilder("corrupt")
	cb := b.Func("cb")
	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	e.CallPtr(cb, "s->cb()") // cb is zero-initialized → handler 0 = self
	e.Halt("return")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	st := NewState(prog)
	st.SetFuncPtr(prog.FieldIndex("cb"), 0xDEADBEEF)
	in := New(prog, st, nil)
	res := in.Dispatch(NewWrite(SpacePIO, 0, nil))
	if res.Fault == nil || res.Fault.Kind != FaultBadCallTarget {
		t.Fatalf("fault = %v, want bad-call-target", res.Fault)
	}
}

func TestRecursionFaultsStackOverflow(t *testing.T) {
	b := ir.NewBuilder("recurse")
	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	e.Call("dispatch", "dispatch()")
	e.Halt("return")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	in := New(prog, NewState(prog), nil)
	res := in.Dispatch(NewWrite(SpacePIO, 0, nil))
	if res.Fault == nil || res.Fault.Kind != FaultStackOverflow {
		t.Fatalf("fault = %v, want stack-overflow", res.Fault)
	}
}

func TestDMARoundTrip(t *testing.T) {
	b := ir.NewBuilder("dma")
	buf := b.Buf("buf", 64)
	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	addr := e.Const(0x100, "addr = 0x100")
	idx := e.Const(0, "idx = 0")
	n := e.Const(32, "n = 32")
	e.DMAToBuf(buf, idx, addr, n, false, "dma_read(buf, 32)")
	addr2 := e.Const(0x200, "addr2 = 0x200")
	e.DMAFromBuf(buf, idx, addr2, n, false, "dma_write(buf, 32)")
	e.Halt("return")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	env := newTestEnv(0x1000)
	for i := 0; i < 32; i++ {
		env.mem[0x100+i] = byte(i * 3)
	}
	in := New(prog, NewState(prog), env)
	res := in.Dispatch(NewWrite(SpacePIO, 0, nil))
	if res.Fault != nil {
		t.Fatalf("fault: %v", res.Fault)
	}
	for i := 0; i < 32; i++ {
		if env.mem[0x200+i] != byte(i*3) {
			t.Fatalf("mem[0x200+%d] = %d, want %d", i, env.mem[0x200+i], byte(i*3))
		}
	}
}

func TestDMAOutOfRangeFaults(t *testing.T) {
	b := ir.NewBuilder("dmabad")
	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	addr := e.Const(1<<40, "addr = huge")
	v := e.DMARead(addr, ir.W32, "v = dma_read4(addr)")
	e.IOOut(v, ir.W32, "iowrite(v)")
	e.Halt("return")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	in := New(prog, NewState(prog), newTestEnv(0x1000))
	res := in.Dispatch(NewRead(SpacePIO, 0))
	if res.Fault == nil || res.Fault.Kind != FaultDMA {
		t.Fatalf("fault = %v, want dma", res.Fault)
	}
}

func TestIOOutProducesResponse(t *testing.T) {
	b := ir.NewBuilder("echo")
	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	v := e.Const(0xCAFE, "v = 0xCAFE")
	e.IOOut(v, ir.W16, "iowrite16(v)")
	e.Halt("return")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	in := New(prog, NewState(prog), nil)
	res := in.Dispatch(NewRead(SpacePIO, 0))
	if res.Fault != nil {
		t.Fatalf("fault: %v", res.Fault)
	}
	if len(res.Output) != 2 || res.Output[0] != 0xFE || res.Output[1] != 0xCA {
		t.Errorf("Output = %x, want fe ca", res.Output)
	}
}

func TestWorkAccountsBytes(t *testing.T) {
	b := ir.NewBuilder("worker")
	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	n := e.Const(512, "n = 512")
	e.Work(n, "emulate_medium(512)")
	e.Halt("return")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	env := newTestEnv(0)
	in := New(prog, NewState(prog), env)
	res := in.Dispatch(NewWrite(SpacePIO, 0, nil))
	if res.WorkBytes != 512 || env.work != 512 {
		t.Errorf("work = %d/%d, want 512/512", res.WorkBytes, env.work)
	}
}

func TestStateCloneIndependent(t *testing.T) {
	prog := buildCounter(t, true)
	st := NewState(prog)
	st.SetIntByName("pos", 5)
	c := st.Clone()
	st.SetIntByName("pos", 7)
	if got, _ := c.IntByName("pos"); got != 5 {
		t.Errorf("clone pos = %d, want 5", got)
	}
}

func TestStateFieldRoundTripProperty(t *testing.T) {
	prog := buildCounter(t, true)
	st := NewState(prog)
	fi := prog.FieldIndex("pos") // W16 field
	prop := func(v uint64) bool {
		st.SetInt(fi, v)
		return st.Int(fi) == v&0xFFFF
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRequestConsumeZeroPadded(t *testing.T) {
	r := NewWrite(SpacePIO, 0, []byte{0x11, 0x22})
	if v := r.Consume(4); v != 0x2211 {
		t.Errorf("consume(4) = %#x, want 0x2211", v)
	}
	if v := r.Consume(1); v != 0 {
		t.Errorf("exhausted consume = %#x, want 0", v)
	}
	r.Rewind()
	if v := r.Consume(1); v != 0x11 {
		t.Errorf("after Rewind consume = %#x, want 0x11", v)
	}
}
