package interp

import (
	"fmt"

	"sedspec/internal/ir"
)

// Default execution limits.
const (
	DefaultStepBudget = 4 << 20
	DefaultMaxDepth   = 64
	// maxDMACopy bounds a single DMA copy, like a real DMA engine's
	// transfer-length register.
	maxDMACopy = 1 << 24
)

// Interp executes a device program. It is not safe for concurrent use; a
// machine serializes I/O dispatch per device, as QEMU's big lock does.
type Interp struct {
	prog  *ir.Program
	state *State
	env   Env

	tracer   Tracer
	observer Observer
	watch    []int

	stepBudget int
	maxDepth   int

	// frames and temp buffers are reused across dispatches.
	frames []frame
	temps  [][]uint64

	flags Flags
	seq   int
}

type frame struct {
	handler int
	block   int
	op      int
	temps   []uint64
	// retFrom is the op address the call was made from, for return TIPs.
	retFrom uint64
}

// New returns an interpreter for the program and state. env may be nil for
// devices that use no machine services.
func New(prog *ir.Program, state *State, env Env) *Interp {
	if env == nil {
		env = NopEnv()
	}
	return &Interp{
		prog:       prog,
		state:      state,
		env:        env,
		stepBudget: DefaultStepBudget,
		maxDepth:   DefaultMaxDepth,
	}
}

// State returns the interpreter's control structure.
func (in *Interp) State() *State { return in.state }

// Program returns the executed program.
func (in *Interp) Program() *ir.Program { return in.prog }

// SetTracer installs (or removes, with nil) a processor-trace sink.
func (in *Interp) SetTracer(t Tracer) { in.tracer = t }

// SetObserver installs (or removes, with nil) an observation sink.
func (in *Interp) SetObserver(o Observer) { in.observer = o }

// SetWatch sets the field indices whose values observation events capture
// (the device-state parameters chosen by the CFG analyzer).
func (in *Interp) SetWatch(fields []int) {
	in.watch = append(in.watch[:0], fields...)
}

// SetStepBudget bounds the ops executed per dispatch; exceeding it faults
// with FaultStepBudget (the emulation-infinite-loop case).
func (in *Interp) SetStepBudget(n int) {
	if n > 0 {
		in.stepBudget = n
	}
}

// StepBudget returns the current per-dispatch step bound, so callers that
// tighten it temporarily (the fuzzer) can restore it afterwards.
func (in *Interp) StepBudget() int { return in.stepBudget }

// Dispatch runs the program's dispatch handler for one I/O interaction.
func (in *Interp) Dispatch(req *Request) *Result {
	return in.Run(in.prog.DispatchHandler, req)
}

// Run executes an arbitrary handler for a request; used by tests and by
// machine-internal completions (DMA callbacks).
func (in *Interp) Run(handler int, req *Request) *Result {
	res := &Result{}
	in.seq = 0
	in.flags = Flags{}
	in.frames = in.frames[:0]
	in.push(handler, 0)

	entry := &in.prog.Handlers[handler].Blocks[0]
	if in.tracer != nil {
		in.tracer.TraceStart(entry.Addr)
	}
	lastAddr := entry.Addr

	for len(in.frames) > 0 {
		f := &in.frames[len(in.frames)-1]
		h := &in.prog.Handlers[f.handler]
		b := &h.Blocks[f.block]

		fault := in.execBlock(f, h, b, req, res)
		if fault != nil {
			res.Fault = fault
			break
		}
		lastAddr = b.TermAddr()
		if res.Steps > in.stepBudget {
			res.Fault = &Fault{
				Kind:   FaultStepBudget,
				Block:  ir.BlockRef{Handler: f.handler, Block: f.block},
				Src:    b.Term.Src0,
				Detail: fmt.Sprintf("exceeded %d steps", in.stepBudget),
			}
			break
		}
	}

	if in.tracer != nil {
		in.tracer.TraceEnd(lastAddr)
	}
	res.Output = req.out
	return res
}

func (in *Interp) push(handler, block int) {
	h := &in.prog.Handlers[handler]
	depth := len(in.frames)
	for len(in.temps) <= depth {
		in.temps = append(in.temps, nil)
	}
	if cap(in.temps[depth]) < h.NumTemps {
		in.temps[depth] = make([]uint64, h.NumTemps)
	}
	t := in.temps[depth][:h.NumTemps]
	for i := range t {
		t[i] = 0
	}
	in.frames = append(in.frames, frame{handler: handler, block: block, temps: t})
}

// execBlock runs one block's ops and terminator, advancing the frame stack.
// It returns a fault or nil.
func (in *Interp) execBlock(f *frame, h *ir.Handler, b *ir.Block, req *Request, res *Result) *Fault {
	if f.op == 0 {
		res.Blocks++
	}
	ref := ir.BlockRef{Handler: f.handler, Block: f.block}

	for i := f.op; i < len(b.Ops); i++ {
		op := &b.Ops[i]
		res.Steps++
		switch op.Code {
		case ir.OpConst:
			f.temps[op.Dst] = op.Imm
		case ir.OpLoad:
			f.temps[op.Dst] = in.state.Int(op.Field)
		case ir.OpStore:
			in.state.SetInt(op.Field, f.temps[op.Src])
		case ir.OpLoadFunc:
			f.temps[op.Dst] = in.state.FuncPtr(op.Field)
		case ir.OpStoreFunc:
			in.state.SetFuncPtr(op.Field, f.temps[op.Src])
		case ir.OpArith:
			v, fl, divZero := ALUExec(op.ALU, f.temps[op.A], f.temps[op.B], op.Width, op.Signed)
			if divZero {
				return &Fault{Kind: FaultDivZero, Block: ref, Src: op.Src0}
			}
			f.temps[op.Dst] = v
			in.flags = fl
		case ir.OpBufLoad:
			v, fault := in.bufLoad(op, f.temps[op.Idx], ref, res)
			if fault != nil {
				return fault
			}
			f.temps[op.Dst] = v
		case ir.OpBufStore:
			if fault := in.bufStore(op, f.temps[op.Idx], byte(f.temps[op.Src]), ref, res); fault != nil {
				return fault
			}
		case ir.OpIOIn:
			f.temps[op.Dst] = req.Consume(op.Width.Bytes())
		case ir.OpIOOut:
			req.emit(f.temps[op.Src], op.Width.Bytes())
		case ir.OpIOAddr:
			f.temps[op.Dst] = req.Addr
		case ir.OpIOLen:
			f.temps[op.Dst] = uint64(req.Remaining())
		case ir.OpIOIsWrite:
			if req.Write {
				f.temps[op.Dst] = 1
			} else {
				f.temps[op.Dst] = 0
			}
		case ir.OpDMARead:
			var buf [8]byte
			n := op.Width.Bytes()
			if err := in.env.DMARead(f.temps[op.A], buf[:n]); err != nil {
				return &Fault{Kind: FaultDMA, Block: ref, Src: op.Src0, Detail: err.Error()}
			}
			f.temps[op.Dst] = readLE(buf[:n], op.Width)
		case ir.OpDMAWrite:
			var buf [8]byte
			n := op.Width.Bytes()
			writeLE(buf[:n], op.Width, f.temps[op.Src])
			if err := in.env.DMAWrite(f.temps[op.A], buf[:n]); err != nil {
				return &Fault{Kind: FaultDMA, Block: ref, Src: op.Src0, Detail: err.Error()}
			}
		case ir.OpDMAToBuf:
			if fault := in.dmaToBuf(op, f, ref, res); fault != nil {
				return fault
			}
		case ir.OpDMAFromBuf:
			if fault := in.dmaFromBuf(op, f, ref, res); fault != nil {
				return fault
			}
		case ir.OpIOToBuf:
			if fault := in.ioToBuf(op, f, req, ref, res); fault != nil {
				return fault
			}
		case ir.OpIRQRaise:
			in.env.RaiseIRQ()
		case ir.OpIRQLower:
			in.env.LowerIRQ()
		case ir.OpEnvRead:
			f.temps[op.Dst] = in.env.ReadEnv(ir.EnvKind(op.Imm))
		case ir.OpWork:
			n := int(f.temps[op.Src])
			if n > 0 {
				in.env.Work(n)
				res.WorkBytes += n
			}
		case ir.OpCall:
			if fault := in.call(op.Handler, f, b, i, ref, op); fault != nil {
				return fault
			}
			return nil // resume callee; caller continues at op i+1 on return
		case ir.OpCallPtr:
			target := in.state.FuncPtr(op.Field)
			if in.tracer != nil {
				targetAddr := uint64(0)
				if target < uint64(len(in.prog.Handlers)) {
					targetAddr = in.prog.Handlers[target].Blocks[0].Addr
				}
				in.tracer.TraceIndirect(b.OpAddr(i), targetAddr)
			}
			if in.observer != nil {
				ev := in.newEvent(ref, b, 0)
				ev.IndirectField = op.Field
				if target < uint64(len(in.prog.Handlers)) {
					ev.Target = in.prog.Handlers[target].Blocks[0].Addr
				}
				ev.Fields = in.captureFields(ev.Fields)
				in.observer.Observe(ev)
			}
			if target >= uint64(len(in.prog.Handlers)) {
				return &Fault{
					Kind: FaultBadCallTarget, Block: ref, Src: op.Src0,
					Detail: fmt.Sprintf("function pointer %q = 0x%x", in.prog.Fields[op.Field].Name, target),
				}
			}
			if fault := in.call(int(target), f, b, i, ref, op); fault != nil {
				return fault
			}
			return nil
		default:
			return &Fault{Kind: FaultArenaEscape, Block: ref, Src: op.Src0,
				Detail: fmt.Sprintf("unknown opcode %v", op.Code)}
		}
	}

	res.Steps++
	return in.execTerm(f, h, b, ref)
}

// call pushes a callee frame, recording where to resume in the caller.
func (in *Interp) call(handler int, f *frame, b *ir.Block, opIdx int, ref ir.BlockRef, op *ir.Op) *Fault {
	if len(in.frames) >= in.maxDepth {
		return &Fault{Kind: FaultStackOverflow, Block: ref, Src: op.Src0}
	}
	f.op = opIdx + 1
	f.retFrom = b.OpAddr(opIdx + 1)
	in.push(handler, 0)
	return nil
}

// execTerm resolves the block terminator, emits trace/observation events,
// and updates the frame stack.
func (in *Interp) execTerm(f *frame, h *ir.Handler, b *ir.Block, ref ir.BlockRef) *Fault {
	t := &b.Term
	next := -1
	var ev ObsEvent
	observing := in.observer != nil
	if observing {
		ev = in.newEvent(ref, b, t.Kind)
	}

	switch t.Kind {
	case ir.TermJump:
		next = t.Target
	case ir.TermBranch:
		taken := t.Rel.Eval(f.temps[t.A], f.temps[t.B], t.Width, t.Signed)
		if taken {
			next = t.Taken
		} else {
			next = t.NotTaken
		}
		if in.tracer != nil {
			in.tracer.TraceBranch(b.TermAddr(), taken)
		}
		if observing {
			ev.Taken = taken
			ev.Target = h.Blocks[next].Addr
			ev.Fields = in.captureFields(ev.Fields)
		}
	case ir.TermSwitch:
		sel := f.temps[t.A]
		next = t.Default
		for _, c := range t.Cases {
			if c.Value == sel {
				next = c.Target
				break
			}
		}
		if in.tracer != nil {
			in.tracer.TraceIndirect(b.TermAddr(), h.Blocks[next].Addr)
		}
		if observing {
			ev.CmdValue = sel
			ev.Target = h.Blocks[next].Addr
			ev.Fields = in.captureFields(ev.Fields)
		}
	case ir.TermReturn, ir.TermHalt:
		// Pop the frame. Halt clears the whole stack (round over).
		if t.Kind == ir.TermHalt {
			in.frames = in.frames[:0]
		} else {
			in.frames = in.frames[:len(in.frames)-1]
		}
		if in.tracer != nil {
			target := uint64(0)
			if len(in.frames) > 0 {
				target = in.frames[len(in.frames)-1].retFrom
			}
			in.tracer.TraceIndirect(b.TermAddr(), target)
		}
		if observing {
			if b.Kind == ir.KindCmdEnd || b.Kind == ir.KindExit || b.Kind == ir.KindEntry {
				ev.Fields = in.captureFields(ev.Fields)
			}
			in.observer.Observe(ev)
		}
		return nil
	}

	if observing {
		if ev.Fields == nil && b.Kind != ir.KindNormal {
			ev.Fields = in.captureFields(ev.Fields)
		}
		in.observer.Observe(ev)
	}
	f.block = next
	f.op = 0
	return nil
}

func (in *Interp) newEvent(ref ir.BlockRef, b *ir.Block, term ir.TermKind) ObsEvent {
	in.seq++
	return ObsEvent{
		Seq:           in.seq,
		Block:         ref,
		Kind:          b.Kind,
		Addr:          b.Addr,
		Depth:         len(in.frames),
		Term:          term,
		IndirectField: -1,
		Flags:         in.flags,
	}
}

func (in *Interp) captureFields(dst []FieldVal) []FieldVal {
	if len(in.watch) == 0 {
		return dst
	}
	if dst == nil {
		dst = make([]FieldVal, 0, len(in.watch))
	}
	for _, fi := range in.watch {
		dst = append(dst, FieldVal{Field: fi, Value: in.state.FieldValue(fi)})
	}
	return dst
}

// arenaByteOff resolves a buffer access to an arena offset.
// inField: within the buffer; corrupt: outside the buffer but inside the
// arena (the access proceeds, silently clobbering a neighbour); escape:
// outside the arena entirely.
func (in *Interp) arenaByteOff(op *ir.Op, rawIdx uint64, delta int64) (off int64, inField, corrupt, escape bool) {
	fld := &in.prog.Fields[op.Field]
	var idx int64
	if op.Signed {
		idx = op.Width.SignExtend(rawIdx)
	} else {
		idx = int64(rawIdx & op.Width.Mask())
	}
	idx += delta
	off = int64(fld.Offset) + idx
	switch {
	case idx >= 0 && idx < int64(fld.Size):
		return off, true, false, false
	case off >= 0 && off < int64(in.prog.ArenaSize):
		return off, false, true, false
	default:
		return off, false, false, true
	}
}

func (in *Interp) bufLoad(op *ir.Op, rawIdx uint64, ref ir.BlockRef, res *Result) (uint64, *Fault) {
	off, _, corrupt, escape := in.arenaByteOff(op, rawIdx, 0)
	if escape {
		return 0, &Fault{Kind: FaultArenaEscape, Block: ref, Src: op.Src0,
			Detail: fmt.Sprintf("read %s[%d]", in.prog.Fields[op.Field].Name, int64(off)-int64(in.prog.Fields[op.Field].Offset))}
	}
	if corrupt {
		res.Corruptions++
	}
	return uint64(in.state.arena[off]), nil
}

func (in *Interp) bufStore(op *ir.Op, rawIdx uint64, v byte, ref ir.BlockRef, res *Result) *Fault {
	off, _, corrupt, escape := in.arenaByteOff(op, rawIdx, 0)
	if escape {
		return &Fault{Kind: FaultArenaEscape, Block: ref, Src: op.Src0,
			Detail: fmt.Sprintf("write %s[%d]", in.prog.Fields[op.Field].Name, int64(off)-int64(in.prog.Fields[op.Field].Offset))}
	}
	if corrupt {
		res.Corruptions++
	}
	in.state.arena[off] = v
	return nil
}

// bulkSpan reports whether the access [idx, idx+n) lies entirely within
// the buffer field, enabling the bulk fast path (one memcpy, like the C
// code's memcpy when no overflow occurs).
func (in *Interp) bulkSpan(op *ir.Op, rawIdx uint64, n int) (int, bool) {
	fld := &in.prog.Fields[op.Field]
	var idx int64
	if op.Signed {
		idx = op.Width.SignExtend(rawIdx)
	} else {
		idx = int64(rawIdx & op.Width.Mask())
	}
	if idx >= 0 && n >= 0 && idx+int64(n) <= int64(fld.Size) {
		return fld.Offset + int(idx), true
	}
	return 0, false
}

func (in *Interp) dmaToBuf(op *ir.Op, f *frame, ref ir.BlockRef, res *Result) *Fault {
	n := int(f.temps[op.B] & 0xFFFF_FFFF)
	if n > maxDMACopy {
		n = maxDMACopy
	}
	addr := f.temps[op.A]
	if off, ok := in.bulkSpan(op, f.temps[op.Idx], n); ok {
		if err := in.env.DMARead(addr, in.state.arena[off:off+n]); err != nil {
			return &Fault{Kind: FaultDMA, Block: ref, Src: op.Src0, Detail: err.Error()}
		}
		return nil
	}
	var chunk [256]byte
	for copied := 0; copied < n; {
		c := len(chunk)
		if rem := n - copied; rem < c {
			c = rem
		}
		if err := in.env.DMARead(addr+uint64(copied), chunk[:c]); err != nil {
			return &Fault{Kind: FaultDMA, Block: ref, Src: op.Src0, Detail: err.Error()}
		}
		for i := 0; i < c; i++ {
			off, _, corrupt, escape := in.arenaByteOff(op, f.temps[op.Idx], int64(copied+i))
			if escape {
				return &Fault{Kind: FaultArenaEscape, Block: ref, Src: op.Src0,
					Detail: fmt.Sprintf("dma write past %s", in.prog.Fields[op.Field].Name)}
			}
			if corrupt {
				res.Corruptions++
			}
			in.state.arena[off] = chunk[i]
		}
		copied += c
	}
	return nil
}

func (in *Interp) ioToBuf(op *ir.Op, f *frame, req *Request, ref ir.BlockRef, res *Result) *Fault {
	n := int(f.temps[op.B] & 0xFFFF_FFFF)
	if n > maxDMACopy {
		n = maxDMACopy
	}
	if off, ok := in.bulkSpan(op, f.temps[op.Idx], n); ok {
		copied := req.ConsumeInto(in.state.arena[off : off+n])
		for i := copied; i < n; i++ {
			in.state.arena[off+i] = 0
		}
		return nil
	}
	for i := 0; i < n; i++ {
		v := byte(req.Consume(1))
		off, _, corrupt, escape := in.arenaByteOff(op, f.temps[op.Idx], int64(i))
		if escape {
			return &Fault{Kind: FaultArenaEscape, Block: ref, Src: op.Src0,
				Detail: fmt.Sprintf("payload copy past %s", in.prog.Fields[op.Field].Name)}
		}
		if corrupt {
			res.Corruptions++
		}
		in.state.arena[off] = v
	}
	return nil
}

func (in *Interp) dmaFromBuf(op *ir.Op, f *frame, ref ir.BlockRef, res *Result) *Fault {
	n := int(f.temps[op.B] & 0xFFFF_FFFF)
	if n > maxDMACopy {
		n = maxDMACopy
	}
	addr := f.temps[op.A]
	if off, ok := in.bulkSpan(op, f.temps[op.Idx], n); ok {
		if err := in.env.DMAWrite(addr, in.state.arena[off:off+n]); err != nil {
			return &Fault{Kind: FaultDMA, Block: ref, Src: op.Src0, Detail: err.Error()}
		}
		return nil
	}
	var chunk [256]byte
	for copied := 0; copied < n; {
		c := len(chunk)
		if rem := n - copied; rem < c {
			c = rem
		}
		for i := 0; i < c; i++ {
			off, _, corrupt, escape := in.arenaByteOff(op, f.temps[op.Idx], int64(copied+i))
			if escape {
				return &Fault{Kind: FaultArenaEscape, Block: ref, Src: op.Src0,
					Detail: fmt.Sprintf("dma read past %s", in.prog.Fields[op.Field].Name)}
			}
			if corrupt {
				res.Corruptions++
			}
			chunk[i] = in.state.arena[off]
		}
		if err := in.env.DMAWrite(addr+uint64(copied), chunk[:c]); err != nil {
			return &Fault{Kind: FaultDMA, Block: ref, Src: op.Src0, Detail: err.Error()}
		}
		copied += c
	}
	return nil
}
