package interp

import (
	"encoding/binary"
	"fmt"
)

// Space distinguishes port-mapped from memory-mapped I/O.
type Space uint8

const (
	// SpacePIO is port-mapped I/O.
	SpacePIO Space = iota + 1
	// SpaceMMIO is memory-mapped I/O.
	SpaceMMIO
)

func (s Space) String() string {
	switch s {
	case SpacePIO:
		return "pio"
	case SpaceMMIO:
		return "mmio"
	default:
		return fmt.Sprintf("Space(%d)", uint8(s))
	}
}

// Request is one I/O interaction from the guest: a port or MMIO access with
// an optional payload (for writes) and a response buffer (for reads).
type Request struct {
	Space Space
	Addr  uint64
	Write bool
	// Data is the payload for writes; empty for reads.
	Data []byte

	pos int
	out []byte
}

// NewWrite constructs a guest write request.
func NewWrite(space Space, addr uint64, data []byte) *Request {
	return &Request{Space: space, Addr: addr, Write: true, Data: data}
}

// NewRead constructs a guest read request.
func NewRead(space Space, addr uint64) *Request {
	return &Request{Space: space, Addr: addr}
}

// Consume reads the next n payload bytes little-endian; exhausted payload
// yields zeros, as a device reading an undriven bus would see. The
// ES-Checker uses it to simulate payload reads before the device consumes
// the request (the request is rewound in between).
func (r *Request) Consume(n int) uint64 {
	var buf [8]byte
	for i := 0; i < n; i++ {
		if r.pos < len(r.Data) {
			buf[i] = r.Data[r.pos]
			r.pos++
		}
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// ConsumeInto copies up to len(dst) payload bytes into dst, advancing the
// cursor, and returns the count copied.
func (r *Request) ConsumeInto(dst []byte) int {
	n := copy(dst, r.Data[r.pos:])
	r.pos += n
	return n
}

// Skip advances the payload cursor by n bytes without reading them. The
// ES-Checker uses it to mirror bulk payload copies it bounds-checks but
// does not perform.
func (r *Request) Skip(n int) {
	r.pos += n
	if r.pos > len(r.Data) {
		r.pos = len(r.Data)
	}
}

// Remaining reports unread payload bytes.
func (r *Request) Remaining() int {
	if r.pos >= len(r.Data) {
		return 0
	}
	return len(r.Data) - r.pos
}

// emit appends n bytes of v little-endian to the response.
func (r *Request) emit(v uint64, n int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	r.out = append(r.out, buf[:n]...)
}

// Response returns the bytes the device produced for a read.
func (r *Request) Response() []byte { return r.out }

// Rewind resets payload consumption and clears the response so the same
// request can be re-dispatched (the ES-Checker simulates the specification
// on the request before the device consumes it).
func (r *Request) Rewind() {
	r.pos = 0
	r.out = nil
}

func (r *Request) String() string {
	dir := "read"
	if r.Write {
		dir = "write"
	}
	return fmt.Sprintf("%s %s 0x%x len=%d", r.Space, dir, r.Addr, len(r.Data))
}
