package interp

import "sedspec/internal/ir"

// Env provides the machine services a device program may invoke: guest
// memory for DMA, the interrupt line, and an emulation-work sink that
// advances virtual time.
type Env interface {
	// DMARead copies guest memory at addr into buf.
	DMARead(addr uint64, buf []byte) error
	// DMAWrite copies buf into guest memory at addr.
	DMAWrite(addr uint64, buf []byte) error
	// RaiseIRQ asserts the device's interrupt line.
	RaiseIRQ()
	// LowerIRQ deasserts the device's interrupt line.
	LowerIRQ()
	// Work models n bytes of emulation work (medium latency, checksums).
	Work(n int)
	// ReadEnv returns an environment value (link status, media presence).
	// The value must be stable within one I/O round so that the
	// ES-Checker's sync points and the device observe the same value.
	ReadEnv(kind ir.EnvKind) uint64
}

// Tracer receives processor-trace events, mirroring what Intel PT emits for
// the traced process. Addresses are the synthetic block/op addresses, so a
// trace module can apply the paper's address-range and ring filters.
type Tracer interface {
	// TraceStart fires when tracing enables at I/O entry (IPT PGE).
	TraceStart(addr uint64)
	// TraceEnd fires when tracing disables at I/O exit (IPT PGD).
	TraceEnd(addr uint64)
	// TraceBranch records a conditional branch outcome (IPT TNT bit). from
	// is the branch instruction's address.
	TraceBranch(from uint64, taken bool)
	// TraceIndirect records an indirect transfer target (IPT TIP packet):
	// switch dispatch, indirect call through a function pointer, return.
	TraceIndirect(from, target uint64)
}

// FieldVal is one watched device-state parameter's value in an observation.
type FieldVal struct {
	Field int    `json:"field"`
	Value uint64 `json:"value"`
}

// ObsEvent is one observation-point record. The analysis phase places
// observation points at control-flow-relevant locations; the interpreter
// emits one event per executed block, with watched field values captured at
// conditional/indirect jumps and at typed blocks, forming the device-state
// change log that ES-CFG construction consumes.
type ObsEvent struct {
	Seq   int          `json:"seq"`
	Block ir.BlockRef  `json:"block"`
	Kind  ir.BlockKind `json:"kind"`
	Addr  uint64       `json:"addr"`
	Depth int          `json:"depth"`

	Term     ir.TermKind `json:"term"`
	Taken    bool        `json:"taken,omitempty"`
	Target   uint64      `json:"target,omitempty"`
	CmdValue uint64      `json:"cmd,omitempty"`
	// IndirectField is the function-pointer field for indirect-call events,
	// -1 otherwise.
	IndirectField int `json:"indirectField"`

	Fields []FieldVal `json:"fields,omitempty"`
	Flags  Flags      `json:"flags"`
}

// Observer receives observation events during instrumented runs.
type Observer interface {
	Observe(ev ObsEvent)
}

// nopEnv is used when no environment is supplied (pure register devices).
type nopEnv struct{}

func (nopEnv) DMARead(uint64, []byte) error  { return nil }
func (nopEnv) DMAWrite(uint64, []byte) error { return nil }
func (nopEnv) RaiseIRQ()                     {}
func (nopEnv) LowerIRQ()                     {}
func (nopEnv) Work(int)                      {}
func (nopEnv) ReadEnv(ir.EnvKind) uint64     { return 1 }

// NopEnv returns an Env that ignores all services.
func NopEnv() Env { return nopEnv{} }
