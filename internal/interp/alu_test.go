package interp

import (
	"testing"
	"testing/quick"

	"sedspec/internal/ir"
)

func TestALUAddOverflowFlags(t *testing.T) {
	tests := []struct {
		name         string
		a, b         uint64
		w            ir.Width
		wantVal      uint64
		wantCarry    bool
		wantOverflow bool
	}{
		{"no wrap", 1, 2, ir.W8, 3, false, false},
		{"unsigned wrap", 0xFF, 1, ir.W8, 0, true, false},
		{"signed wrap", 0x7F, 1, ir.W8, 0x80, false, true},
		{"both wrap", 0xFF, 0x81, ir.W8, 0x80, true, false},
		{"neg+neg signed wrap", 0x80, 0x80, ir.W8, 0, true, true},
		{"w16 unsigned wrap", 0xFFFF, 2, ir.W16, 1, true, false},
		{"w32 signed wrap", 0x7FFF_FFFF, 1, ir.W32, 0x8000_0000, false, true},
		{"w64 unsigned wrap", ^uint64(0), 1, ir.W64, 0, true, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v, fl, dz := ALUExec(ir.ALUAdd, tt.a, tt.b, tt.w, false)
			if dz {
				t.Fatal("unexpected divZero")
			}
			if v != tt.wantVal {
				t.Errorf("val = %#x, want %#x", v, tt.wantVal)
			}
			if fl.Carry != tt.wantCarry {
				t.Errorf("carry = %v, want %v", fl.Carry, tt.wantCarry)
			}
			if fl.Overflow != tt.wantOverflow {
				t.Errorf("overflow = %v, want %v", fl.Overflow, tt.wantOverflow)
			}
		})
	}
}

func TestALUSubFlags(t *testing.T) {
	// 0 - 1 at W8: unsigned borrow (carry), result 0xFF.
	v, fl, _ := ALUExec(ir.ALUSub, 0, 1, ir.W8, false)
	if v != 0xFF || !fl.Carry {
		t.Errorf("0-1: val=%#x carry=%v, want 0xFF true", v, fl.Carry)
	}
	// (-128) - 1 at W8 signed: overflow.
	_, fl, _ = ALUExec(ir.ALUSub, 0x80, 1, ir.W8, true)
	if !fl.Overflow {
		t.Error("(-128)-1 should set overflow")
	}
	// CVE-2021-3409 shape: blksize - data_count underflows unsigned.
	v, fl, _ = ALUExec(ir.ALUSub, 100, 200, ir.W16, false)
	if !fl.Carry {
		t.Error("100-200 unsigned should set carry (underflow)")
	}
	if v != 0xFF9C { // 100-200 wrapped at 16 bits
		t.Errorf("val = %#x, want 0xff9c", v)
	}
}

func TestALUMulFlags(t *testing.T) {
	_, fl, _ := ALUExec(ir.ALUMul, 16, 16, ir.W8, false)
	if !fl.Carry {
		t.Error("16*16 at W8 should carry")
	}
	v, fl, _ := ALUExec(ir.ALUMul, 5, 5, ir.W8, false)
	if v != 25 || fl.Carry {
		t.Errorf("5*5 = %d carry=%v", v, fl.Carry)
	}
	// W64 big product.
	_, fl, _ = ALUExec(ir.ALUMul, 1<<33, 1<<33, ir.W64, false)
	if !fl.Carry {
		t.Error("2^66 product should carry at W64")
	}
}

func TestALUDivModByZero(t *testing.T) {
	for _, alu := range []ir.ALU{ir.ALUDiv, ir.ALUMod} {
		_, _, dz := ALUExec(alu, 5, 0, ir.W32, false)
		if !dz {
			t.Errorf("%v by zero should report divZero", alu)
		}
	}
	v, _, dz := ALUExec(ir.ALUDiv, 7, 2, ir.W32, false)
	if dz || v != 3 {
		t.Errorf("7/2 = %d dz=%v", v, dz)
	}
	// Signed division: -7 / 2 = -3 (truncation toward zero).
	v, _, _ = ALUExec(ir.ALUDiv, uint64(0xFFFF_FFF9), 2, ir.W32, true)
	if ir.W32.SignExtend(v) != -3 {
		t.Errorf("-7/2 signed = %d, want -3", ir.W32.SignExtend(v))
	}
}

func TestALUShifts(t *testing.T) {
	v, fl, _ := ALUExec(ir.ALUShl, 0x80, 1, ir.W8, false)
	if v != 0 || !fl.Carry {
		t.Errorf("0x80<<1 = %#x carry=%v, want 0 true", v, fl.Carry)
	}
	v, _, _ = ALUExec(ir.ALUShr, 0x80, 7, ir.W8, false)
	if v != 1 {
		t.Errorf("0x80>>7 = %d, want 1", v)
	}
	// Arithmetic shift preserves sign.
	v, _, _ = ALUExec(ir.ALUShr, 0x80, 7, ir.W8, true)
	if v != 0xFF {
		t.Errorf("sar(0x80,7) = %#x, want 0xFF", v)
	}
	// Oversized shift counts.
	v, _, _ = ALUExec(ir.ALUShl, 1, 200, ir.W8, false)
	if v != 0 {
		t.Errorf("1<<200 = %d, want 0", v)
	}
}

func TestALUBitwiseNoFlagsButZeroSign(t *testing.T) {
	v, fl, _ := ALUExec(ir.ALUAnd, 0xF0, 0x0F, ir.W8, false)
	if v != 0 || !fl.Zero {
		t.Errorf("AND: v=%#x zero=%v", v, fl.Zero)
	}
	v, fl, _ = ALUExec(ir.ALUOr, 0x80, 0x01, ir.W8, false)
	if v != 0x81 || !fl.Sign {
		t.Errorf("OR: v=%#x sign=%v", v, fl.Sign)
	}
	v, _, _ = ALUExec(ir.ALUXor, 0xFF, 0x0F, ir.W8, false)
	if v != 0xF0 {
		t.Errorf("XOR: v=%#x", v)
	}
}

// TestALUAddMatchesNativeProperty cross-checks width-truncated ALU results
// against native Go arithmetic.
func TestALUAddMatchesNativeProperty(t *testing.T) {
	prop := func(a, b uint64) bool {
		for _, w := range []ir.Width{ir.W8, ir.W16, ir.W32, ir.W64} {
			v, fl, _ := ALUExec(ir.ALUAdd, a, b, w, false)
			if v != (a+b)&w.Mask() {
				return false
			}
			// Carry iff true sum exceeds the mask.
			am, bm := a&w.Mask(), b&w.Mask()
			var wantCarry bool
			if w == ir.W64 {
				wantCarry = am+bm < am
			} else {
				wantCarry = am+bm > w.Mask()
			}
			if fl.Carry != wantCarry {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestALUSignedOverflowProperty: signed overflow iff the mathematically
// exact sum falls outside the representable range.
func TestALUSignedOverflowProperty(t *testing.T) {
	prop := func(a, b uint64) bool {
		for _, w := range []ir.Width{ir.W8, ir.W16, ir.W32} {
			_, fl, _ := ALUExec(ir.ALUAdd, a, b, w, true)
			exact := w.SignExtend(a) + w.SignExtend(b)
			want := exact > w.MaxSigned() || exact < w.MinSigned()
			if fl.Overflow != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestOverflowFor(t *testing.T) {
	fl := Flags{Carry: true}
	if !fl.OverflowFor(false) || fl.OverflowFor(true) {
		t.Error("carry should flag unsigned overflow only")
	}
	fl = Flags{Overflow: true}
	if fl.OverflowFor(false) || !fl.OverflowFor(true) {
		t.Error("overflow should flag signed overflow only")
	}
}

func TestMul64(t *testing.T) {
	tests := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{^uint64(0), 2, 1, ^uint64(0) - 1},
		{1 << 32, 1 << 32, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
	}
	for _, tt := range tests {
		hi, lo := mul64(tt.a, tt.b)
		if hi != tt.hi || lo != tt.lo {
			t.Errorf("mul64(%#x,%#x) = %#x,%#x want %#x,%#x", tt.a, tt.b, hi, lo, tt.hi, tt.lo)
		}
	}
}
