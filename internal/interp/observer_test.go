package interp

import (
	"testing"

	"sedspec/internal/ir"
)

// collectObs gathers all observation events.
type collectObs struct {
	events []ObsEvent
}

func (c *collectObs) Observe(ev ObsEvent) {
	if len(ev.Fields) > 0 {
		ev.Fields = append([]FieldVal(nil), ev.Fields...)
	}
	c.events = append(c.events, ev)
}

// buildObserved builds a device with a command switch, a conditional, and
// an indirect call, to pin down the observation event stream.
func buildObserved(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("observed")
	mode := b.Int("mode", ir.W8, ir.HWRegister())
	cb := b.Func("cb")

	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	fv := e.FuncValue("cbh", "s->cb = cbh")
	e.StoreFunc(cb, fv, "s->cb = cbh")
	v := e.IOIn(ir.W8, "v = ioread8()")
	e.Store(mode, v, "s->mode = v")
	m := e.Load(mode, "m = s->mode")
	e.Switch(m, "switch (m)", "out",
		ir.Case(0x20, "one"), ir.Case(5, "one2")) // cmd decision shape
	o := h.Block("one")
	ten := o.Const(10, "10")
	o.Branch(v, ir.RelGT, ten, ir.W8, false, "if (v > 10)", "big", "out")
	o2 := h.Block("one2")
	o2.Jump("one", "goto one")
	bg := h.Block("big")
	bg.CallPtr(cb, "s->cb()")
	bg.Jump("out", "goto out")
	h.Block("out").Exit().Halt("return")

	cbh := b.Handler("cbh")
	cbb := cbh.Block("body")
	cbb.IRQRaise("irq")
	cbb.Return("return")

	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestObserverEventStream(t *testing.T) {
	prog := buildObserved(t)
	st := NewState(prog)
	in := New(prog, st, nil)
	obs := &collectObs{}
	in.SetObserver(obs)
	in.SetWatch([]int{prog.FieldIndex("mode")})

	if res := in.Dispatch(NewWrite(SpacePIO, 0, []byte{0x20})); res.Fault != nil {
		t.Fatal(res.Fault)
	}

	// Expected: entry (switch), indirect-call event, "one" (branch,
	// taken), "big" (jump), callee body (return), "out" (halt).
	var kinds []string
	for _, ev := range obs.events {
		switch {
		case ev.IndirectField >= 0:
			kinds = append(kinds, "icall")
		case ev.Term == ir.TermSwitch:
			kinds = append(kinds, "switch")
		case ev.Term == ir.TermBranch:
			kinds = append(kinds, "branch")
		case ev.Term == ir.TermJump:
			kinds = append(kinds, "jump")
		case ev.Term == ir.TermReturn:
			kinds = append(kinds, "return")
		case ev.Term == ir.TermHalt:
			kinds = append(kinds, "halt")
		}
	}
	want := []string{"switch", "branch", "icall", "return", "jump", "halt"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %s, want %s (%v)", i, kinds[i], want[i], kinds)
		}
	}

}

func TestObserverSwitchSelectorAndBranchArm(t *testing.T) {
	prog := buildObserved(t)
	st := NewState(prog)
	in := New(prog, st, nil)
	obs := &collectObs{}
	in.SetObserver(obs)
	in.SetWatch([]int{prog.FieldIndex("mode")})

	// Selector 5 takes the case arm; v=5 <= 10 takes the not-taken arm.
	if res := in.Dispatch(NewWrite(SpacePIO, 0, []byte{5})); res.Fault != nil {
		t.Fatal(res.Fault)
	}
	var sw, br *ObsEvent
	for i := range obs.events {
		ev := &obs.events[i]
		switch ev.Term {
		case ir.TermSwitch:
			sw = ev
		case ir.TermBranch:
			br = ev
		}
	}
	if sw == nil || br == nil {
		t.Fatal("missing switch/branch events")
	}
	if sw.CmdValue != 5 {
		t.Errorf("switch selector = %d, want 5", sw.CmdValue)
	}
	if br.Taken {
		t.Error("branch should be not-taken for v=5")
	}
	// Watched field captured at decision points with the post-op value.
	if len(sw.Fields) != 1 || sw.Fields[0].Value != 5 {
		t.Errorf("switch event fields = %+v, want mode=5", sw.Fields)
	}
}

func TestObserverDisabledCostsNothing(t *testing.T) {
	prog := buildObserved(t)
	in := New(prog, NewState(prog), nil)
	// No observer: dispatch must not emit (nothing to assert beyond no
	// panic and a clean run).
	if res := in.Dispatch(NewWrite(SpacePIO, 0, []byte{1})); res.Fault != nil {
		t.Fatal(res.Fault)
	}
}

func TestIOToBufFastAndSlowPaths(t *testing.T) {
	b := ir.NewBuilder("iocopy")
	buf := b.Buf("buf", 16)
	b.Int("tail", ir.W32) // absorbs overflow corruption
	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	idx := e.IOIn(ir.W8, "idx = ioread8()")
	n := e.IOIn(ir.W8, "n = ioread8()")
	e.IOToBuf(buf, idx, n, false, "copy payload")
	e.Halt("return")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(prog)
	in := New(prog, st, nil)

	// Fast path: fully in bounds.
	payload := append([]byte{2, 4}, []byte("ABCD")...)
	res := in.Dispatch(NewWrite(SpacePIO, 0, payload))
	if res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if got := string(st.Buf(prog.FieldIndex("buf"))[2:6]); got != "ABCD" {
		t.Errorf("buf[2:6] = %q, want ABCD", got)
	}
	if res.Corruptions != 0 {
		t.Error("in-bounds copy must not corrupt")
	}
	// Fast path zero-fills when the payload is shorter than n.
	st.Reset()
	res = in.Dispatch(NewWrite(SpacePIO, 0, []byte{0, 8, 'x'}))
	if res.Fault != nil {
		t.Fatal(res.Fault)
	}
	bb := st.Buf(prog.FieldIndex("buf"))
	if bb[0] != 'x' || bb[1] != 0 || bb[7] != 0 {
		t.Errorf("short payload not zero-padded: %v", bb[:8])
	}

	// Slow path: straddles the buffer end, corrupting the arena tail.
	st.Reset()
	res = in.Dispatch(NewWrite(SpacePIO, 0, []byte{15, 2, 0x7, 0x8}))
	if res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if res.Corruptions != 1 {
		t.Errorf("corruptions = %d, want 1 (one byte past the buffer)", res.Corruptions)
	}
	if v, _ := st.IntByName("tail"); byte(v) != 0x8 {
		t.Errorf("tail low byte = %#x, want the spilled 0x8", byte(v))
	}
}

func TestDMABulkFastPathMatchesSlowSemantics(t *testing.T) {
	b := ir.NewBuilder("dmacopy")
	buf := b.Buf("buf", 64)
	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	idx := e.IOIn(ir.W8, "idx")
	n := e.IOIn(ir.W8, "n")
	addr := e.Const(0x40, "addr")
	e.DMAToBuf(buf, idx, addr, n, false, "dma in")
	dst := e.Const(0x100, "dst")
	e.DMAFromBuf(buf, idx, dst, n, false, "dma out")
	e.Halt("return")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	env := newTestEnv(0x1000)
	for i := 0; i < 32; i++ {
		env.mem[0x40+i] = byte(0x30 + i)
	}
	st := NewState(prog)
	in := New(prog, st, env)
	if res := in.Dispatch(NewWrite(SpacePIO, 0, []byte{4, 32})); res.Fault != nil {
		t.Fatal(res.Fault)
	}
	for i := 0; i < 32; i++ {
		if env.mem[0x100+i] != byte(0x30+i) {
			t.Fatalf("round trip byte %d = %d", i, env.mem[0x100+i])
		}
	}
}
