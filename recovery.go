package sedspec

import (
	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
)

// RollbackGuard implements the anomaly-handling extension the paper's
// discussion sketches (§VIII): instead of leaving the machine halted after
// a blocking anomaly, roll it back to a clean snapshot taken before the
// exploitation attempt and keep serving the tenant.
//
// The guard keeps a rolling snapshot refreshed every SnapshotEvery clean
// I/O rounds. When the checker blocks, the guard restores the snapshot,
// resynchronizes the checker's shadow state, and clears the halt — the
// offending request is dropped, everything before the snapshot survives.
type RollbackGuard struct {
	m   *machine.Machine
	att *machine.Attached
	chk *checker.Checker

	// SnapshotEvery is the clean-round interval between snapshots.
	SnapshotEvery int

	clean int
	snap  *machine.Snapshot

	// Recoveries counts successful rollbacks.
	Recoveries int
}

var _ machine.PostInterposer = (*RollbackGuard)(nil)

// PreIO implements machine.Interposer as a no-op (snapshotting happens
// after clean rounds).
func (g *RollbackGuard) PreIO(machine.Device, *interp.Request) error { return nil }

// PostIO refreshes the rolling snapshot after clean rounds.
func (g *RollbackGuard) PostIO(machine.Device, *interp.Request, *interp.Result) {
	g.clean++
	if g.clean >= g.SnapshotEvery {
		g.snap = g.m.Snapshot()
		g.clean = 0
	}
}

// recover rolls back to the last snapshot. Invoked as the checker's halt
// hook, so it runs at the moment a blocking anomaly fires.
func (g *RollbackGuard) recover() {
	if g.snap == nil {
		// Nothing to roll back to: fall back to a halt.
		g.m.Halt()
		return
	}
	if err := g.m.Restore(g.snap); err != nil {
		g.m.Halt()
		return
	}
	g.chk.ResyncShadow(g.att.Dev().State())
	g.Recoveries++
}

// ProtectWithRollback is Protect plus rollback recovery: the returned
// guard snapshots the machine every snapshotEvery clean rounds, and a
// blocking anomaly restores the snapshot instead of leaving the machine
// halted. The blocked request still surfaces as an error to its issuer.
func ProtectWithRollback(att *machine.Attached, spec *core.Spec, snapshotEvery int, opts ...checker.Option) (*checker.Checker, *RollbackGuard) {
	if snapshotEvery <= 0 {
		snapshotEvery = 64
	}
	g := &RollbackGuard{
		m:             att.Machine(),
		att:           att,
		SnapshotEvery: snapshotEvery,
	}
	base := []checker.Option{
		checker.WithEnv(att),
		checker.WithHalt(g.recover),
	}
	chk := checker.New(spec, att.Dev().State(), append(base, opts...)...)
	g.chk = chk
	att.AddInterposer(chk)
	att.AddInterposer(g)
	// Seed the first snapshot from the current (clean) state.
	g.snap = g.m.Snapshot()
	return chk, g
}

// ProtectSharedWithRollback is ProtectShared plus rollback recovery: the
// session checker is drawn from the shared engine (so it participates in
// hot-swaps and aggregate accounting), and a blocking anomaly restores
// the machine's rolling snapshot instead of leaving it halted. When a
// swap's grace period overlaps an exploit, the rollback runs against
// whatever spec version actually checked the round — the anomaly's
// SpecGen names it.
func ProtectSharedWithRollback(att *machine.Attached, sh *SharedChecker, snapshotEvery int, opts ...checker.Option) (*checker.Checker, *RollbackGuard) {
	if snapshotEvery <= 0 {
		snapshotEvery = 64
	}
	g := &RollbackGuard{
		m:             att.Machine(),
		att:           att,
		SnapshotEvery: snapshotEvery,
	}
	base := []checker.Option{
		checker.WithEnv(att),
		checker.WithHalt(g.recover),
		checker.WithClock(att.Machine().Clock),
		checker.WithSessionID(att.SessionID()),
	}
	chk := sh.NewSession(att.Dev().State(), append(base, opts...)...)
	g.chk = chk
	att.AddInterposer(chk)
	att.AddInterposer(g)
	g.snap = g.m.Snapshot()
	return chk, g
}
