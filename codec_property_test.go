// Codec property test: pushing a learned spec through the binary store
// codec must not change enforcement. For every CVE case study, in both
// modes, a Save→Load'd spec (EncodeBinary → DecodeBinary) must produce
// the identical differential anomaly stream, warning stream, and
// counters that the freshly learned spec produces.
package sedspec_test

import (
	"fmt"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/cvesim"
	"sedspec/internal/machine"
)

// replayPoCBinary is replayPoC with the spec round-tripped through the
// binary codec before sealing.
func replayPoCBinary(t *testing.T, p *cvesim.PoC, mode checker.Mode) diffRun {
	t.Helper()
	m := machine.New(machine.WithMemory(1 << 20))
	dev, aopts := p.Build()
	att := m.Attach(dev, aopts...)
	spec, err := sedspec.Learn(att, p.Train)
	if err != nil {
		t.Fatalf("learn: %v", err)
	}
	data, err := spec.EncodeBinary()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := core.DecodeBinary(att.Dev().Program(), data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	chk := sedspec.Protect(att, back,
		checker.WithMode(mode), checker.WithBudget(200_000))
	return captureRun(chk, p.Exploit(sedspec.NewDriver(att), m))
}

func TestBinaryCodecPreservesEnforcement(t *testing.T) {
	for _, p := range cvesim.All() {
		for _, mode := range []checker.Mode{checker.ModeProtection, checker.ModeEnhancement} {
			t.Run(fmt.Sprintf("%s/%s", p.CVE, mode), func(t *testing.T) {
				baseline := replayPoC(t, p, mode, nil)
				decoded := replayPoCBinary(t, p, mode)
				assertSameRun(t, "binary round trip", decoded, baseline)
			})
		}
	}
}
