package sedspec_test

import (
	"errors"
	"testing"

	"sedspec"
	"sedspec/internal/analysis"
	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/machine"
)

func TestRollbackRecovery(t *testing.T) {
	m, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	chk, guard := sedspec.ProtectWithRollback(att, spec, 4)

	d := sedspec.NewDriver(att)
	// Establish meaningful device state, then enough clean rounds to
	// refresh the snapshot past it.
	if _, err := d.Out(testdev.PortCmd, []byte{testdev.CmdWriteBegin, 8}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := d.Out8(testdev.PortData, 0x5A); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdStatus); err != nil {
		t.Fatal(err)
	}

	// The exploit attempt: blocked, rolled back, machine stays up.
	err := venomExploit(d, 32)
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) {
		t.Fatalf("exploit not blocked: %v", err)
	}
	if m.Halted() {
		t.Fatal("rollback should leave the machine running")
	}
	if guard.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", guard.Recoveries)
	}

	// The machine rolled back to the last clean snapshot. Note what that
	// means: the exploit's in-bounds prefix (legal FIFO writes) is clean
	// traffic and may be part of the snapshot — rollback only guarantees
	// the *violating* state never sticks.
	if pos, _ := att.Dev().State().IntByName("data_pos"); pos > 16 {
		t.Errorf("data_pos = %d: violating state survived rollback", pos)
	}

	// Traffic continues after recovery.
	if err := benignTrain(d); err != nil {
		t.Fatalf("post-recovery benign traffic blocked: %v", err)
	}
	if chk.Stats().Blocked == 0 {
		t.Error("blocked counter should have recorded the attempt")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m, att := setup(t, testdev.Options{})
	d := sedspec.NewDriver(att)
	if _, err := d.Out(testdev.PortCmd, []byte{testdev.CmdWriteBegin, 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Write(0x100, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()

	// Mutate everything, then restore.
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdReset); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Write(0x100, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	m.Halt()
	if err := m.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if m.Halted() {
		t.Error("Restore should clear the halt")
	}
	if v, _ := att.Dev().State().IntByName("data_len"); v != 4 {
		t.Errorf("data_len = %d, want 4 (restored)", v)
	}
	buf := make([]byte, 3)
	if err := m.Mem.Read(0x100, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Errorf("guest memory not restored: %v", buf)
	}
}

func TestRestoreRejectsMismatchedMachine(t *testing.T) {
	m1, _ := setup(t, testdev.Options{})
	snap := m1.Snapshot()
	m2 := sedspec.NewMachine(machine.WithMemory(1 << 10))
	if err := m2.Restore(snap); err == nil {
		t.Error("restoring a foreign snapshot must fail")
	}
}

func TestAnomalySeverityLevels(t *testing.T) {
	cases := map[checker.Strategy]checker.Severity{
		checker.StrategyParameter:       checker.SeverityCritical,
		checker.StrategyIndirectJump:    checker.SeverityHigh,
		checker.StrategyConditionalJump: checker.SeverityWarning,
	}
	for strat, want := range cases {
		a := &checker.Anomaly{Strategy: strat}
		if a.Severity() != want {
			t.Errorf("%v severity = %v, want %v", strat, a.Severity(), want)
		}
	}
	if checker.SeverityCritical.String() != "critical" {
		t.Error("severity strings wrong")
	}
}

// TestFalsePositiveRemedyByRefinement reproduces §VIII's remedy: a rare
// command flags as a false positive; retraining with a corpus that covers
// it (here via merged logs from a second "tester") eliminates the flag.
func TestFalsePositiveRemedyByRefinement(t *testing.T) {
	_, att := setup(t, testdev.Options{})
	first := learn(t, att)

	// The rare diagnostic command is a false positive under the first
	// specification.
	sedspec.Protect(att, first.Spec)
	d := sedspec.NewDriver(att)
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err == nil {
		t.Fatal("diag should be flagged under the initial spec")
	}
	att.Machine().Resume()
	sedspec.Unprotect(att)

	// A second contributor's training covers the diagnostic command.
	second, err := sedspec.LearnFull(att, func(dr *sedspec.Driver) error {
		if err := benignTrain(dr); err != nil {
			return err
		}
		_, err := dr.Out8(testdev.PortCmd, testdev.CmdDiag)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	merged, err := analysis.MergeLogs(first.Log, second.Log)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := core.Build(att.Dev().Program(), second.Params, merged)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Stats.Commands <= first.Spec.Stats.Commands {
		t.Errorf("refined spec should learn more commands: %d vs %d",
			refined.Stats.Commands, first.Spec.Stats.Commands)
	}

	att.Dev().Reset()
	sedspec.Protect(att, refined)
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
		t.Fatalf("diag still flagged after refinement: %v", err)
	}
	// The original protections are intact.
	if err := venomExploit(d, 32); err == nil {
		t.Error("venom must still be blocked by the refined spec")
	}
}

func TestMergeLogsRejectsMixedDevices(t *testing.T) {
	a := &analysis.Log{Device: "fdc"}
	b := &analysis.Log{Device: "scsi"}
	if _, err := analysis.MergeLogs(a, b); err == nil {
		t.Error("merging logs for different devices must fail")
	}
	if _, err := analysis.MergeLogs(); err == nil {
		t.Error("merging nothing must fail")
	}
}
