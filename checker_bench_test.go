// Micro-benchmarks of the per-I/O ES-Checker cost: a benign request
// stream is captured once per device and then replayed straight into the
// checker (no device, no machine dispatch in the timed region), against
// the threaded-code engine (the deployed default), the sealed switch
// walker, and the pre-seal reference engine. Run with:
//
//	go test -bench=BenchmarkCheckerPerIO -benchmem
package sedspec_test

import (
	"runtime"
	"testing"

	"sedspec/internal/bench"
	"sedspec/internal/checker"
)

func BenchmarkCheckerPerIO(b *testing.B) {
	for _, t := range bench.Targets(true) {
		b.Run(t.Name, func(b *testing.B) {
			r, err := bench.NewCheckerReplay(t, 60)
			if err != nil {
				b.Fatal(err)
			}
			engines := []struct {
				name     string
				zeroHeap bool // sealed engines must not allocate in steady state
				opts     []checker.Option
			}{
				{"threaded", true, nil}, // flight recorder on (the deployed default)
				{"threaded-norec", true, []checker.Option{checker.WithRecorder(nil)}},
				{"sealed", true, []checker.Option{checker.WithThreadedDispatch(false)}},
				{"sealed-norec", true, []checker.Option{checker.WithThreadedDispatch(false), checker.WithRecorder(nil)}},
				{"unsealed", false, []checker.Option{checker.WithReferenceSimulation()}},
			}
			for _, eng := range engines {
				b.Run(eng.name, func(b *testing.B) {
					chk := r.NewChecker(eng.opts...)
					// One warm-up cycle grows the frame/temp stacks so the
					// timed region measures steady state.
					for i := 0; i < len(r.Reqs); i++ {
						if err := r.Step(chk, i); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportAllocs()
					b.ResetTimer()
					// The zero-allocation contract is asserted on the minimum
					// per-chunk malloc count: background runtime activity
					// (scavenger timers, GC worker spawns) can land a stray
					// malloc in any one chunk, but a check path that allocates
					// does so in every chunk.
					minAllocs := uint64(^uint64(0))
					var ms runtime.MemStats
					const chunk = 1 << 16
					for done := 0; done < b.N; {
						n := chunk
						if b.N-done < n {
							n = b.N - done
						}
						b.StopTimer()
						runtime.ReadMemStats(&ms)
						before := ms.Mallocs
						b.StartTimer()
						for i := done; i < done+n; i++ {
							if err := r.Step(chk, i); err != nil {
								b.Fatal(err)
							}
						}
						b.StopTimer()
						runtime.ReadMemStats(&ms)
						if d := ms.Mallocs - before; d < minAllocs {
							minAllocs = d
						}
						b.StartTimer()
						done += n
					}
					b.StopTimer()
					if eng.zeroHeap && b.N >= chunk && minAllocs != 0 {
						b.Fatalf("%s engine allocated %d times per %d-op chunk in steady state, want 0",
							eng.name, minAllocs, chunk)
					}
				})
			}
		})
	}
}
