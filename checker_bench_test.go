// Micro-benchmarks of the per-I/O ES-Checker cost: a benign request
// stream is captured once per device and then replayed straight into the
// checker (no device, no machine dispatch in the timed region), once
// against the sealed fast path and once against the pre-seal reference
// engine. Run with:
//
//	go test -bench=BenchmarkCheckerPerIO -benchmem
package sedspec_test

import (
	"testing"

	"sedspec/internal/bench"
	"sedspec/internal/checker"
)

func BenchmarkCheckerPerIO(b *testing.B) {
	for _, t := range bench.Targets(true) {
		b.Run(t.Name, func(b *testing.B) {
			r, err := bench.NewCheckerReplay(t, 60)
			if err != nil {
				b.Fatal(err)
			}
			engines := []struct {
				name string
				opts []checker.Option
			}{
				{"sealed", nil}, // flight recorder on (the deployed default)
				{"sealed-norec", []checker.Option{checker.WithRecorder(nil)}},
				{"unsealed", []checker.Option{checker.WithReferenceSimulation()}},
			}
			for _, eng := range engines {
				b.Run(eng.name, func(b *testing.B) {
					chk := r.NewChecker(eng.opts...)
					// One warm-up cycle grows the frame/temp stacks so the
					// timed region measures steady state.
					for i := 0; i < len(r.Reqs); i++ {
						if err := r.Step(chk, i); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := r.Step(chk, i); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}
