package sedspec_test

import (
	"errors"
	"fmt"
	"testing"

	"sedspec"
	"sedspec/internal/analysis"
	"sedspec/internal/checker"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/machine"
)

// setup attaches a fresh testdev to a machine.
func setup(t *testing.T, opts testdev.Options) (*sedspec.Machine, *sedspec.Attached) {
	t.Helper()
	m := sedspec.NewMachine()
	dev := testdev.New(opts)
	att := m.Attach(dev, machine.WithPIO(testdev.PortCmd, testdev.PortCount))
	return m, att
}

// benignTrain exercises the device's normal command set: reset, bounded
// writes, reads, status polls, and the environment port — but never the
// rare diagnostic command.
func benignTrain(d *sedspec.Driver) error {
	for _, n := range []byte{1, 4, 8, 16} {
		if _, err := d.Out8(testdev.PortCmd, testdev.CmdReset); err != nil {
			return err
		}
		if _, err := d.Out(testdev.PortCmd, []byte{testdev.CmdWriteBegin, n}); err != nil {
			return err
		}
		for i := byte(0); i < n; i++ {
			if _, err := d.Out8(testdev.PortData, i*3); err != nil {
				return err
			}
		}
		if _, err := d.Out8(testdev.PortCmd, testdev.CmdRead); err != nil {
			return err
		}
		if _, err := d.Out8(testdev.PortCmd, testdev.CmdStatus); err != nil {
			return err
		}
		if _, err := d.Out8(testdev.PortEnv, 0); err != nil {
			return err
		}
	}
	return nil
}

func learn(t *testing.T, att *sedspec.Attached) *sedspec.LearnResult {
	t.Helper()
	r, err := sedspec.LearnFull(att, benignTrain)
	if err != nil {
		t.Fatalf("LearnFull: %v", err)
	}
	return r
}

func TestLearnBuildsSpec(t *testing.T) {
	_, att := setup(t, testdev.Options{})
	r := learn(t, att)
	s := r.Spec

	if s.Stats.TrainingRounds == 0 || s.Stats.ESBlocks == 0 {
		t.Fatalf("empty spec: %+v", s.Stats)
	}
	if s.Stats.DroppedOps == 0 {
		t.Error("slicing should drop some ops (work, IRQ, output)")
	}
	if s.Stats.SyncPoints == 0 {
		t.Error("the env branch should produce a sync point")
	}
	// Training used reset, write-begin, read, and status (never diag).
	if s.Stats.Commands != 4 {
		t.Errorf("commands learned = %d, want 4", s.Stats.Commands)
	}
	if s.Stats.IndirectTargets != 1 {
		t.Errorf("indirect targets = %d, want 1 (testdev_complete)", s.Stats.IndirectTargets)
	}
}

func TestParamSelectionClasses(t *testing.T) {
	_, att := setup(t, testdev.Options{})
	r := learn(t, att)
	prog := att.Dev().Program()

	wantClass := map[string]analysis.ParamClass{
		"fifo":     analysis.ClassBuffer,
		"data_pos": analysis.ClassIndex,
		"data_len": analysis.ClassIndex,
		"irq_cb":   analysis.ClassFuncPtr,
		"cmd":      analysis.ClassRegister,
	}
	for name, want := range wantClass {
		p := r.Params.ParamFor(prog.FieldIndex(name))
		if p == nil {
			t.Errorf("param %q not selected", name)
			continue
		}
		if p.Class != want {
			t.Errorf("param %q class = %v, want %v", name, p.Class, want)
		}
	}
	// status never influences control flow: Rule 1 must not select it.
	if r.Params.Contains(prog.FieldIndex("status")) {
		t.Error("status should not be selected (does not influence control flow)")
	}
}

func TestBenignTrafficPassesChecker(t *testing.T) {
	m, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	chk := sedspec.Protect(att, spec)

	d := sedspec.NewDriver(att)
	if err := benignTrain(d); err != nil {
		t.Fatalf("benign traffic blocked: %v", err)
	}
	if m.Halted() {
		t.Fatal("machine halted on benign traffic")
	}
	st := chk.Stats()
	if st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies != 0 {
		t.Fatalf("anomalies on benign traffic: %+v", st)
	}
	if st.SyncPointsResolved == 0 {
		t.Error("sync points should have been resolved during env-port rounds")
	}
}

// venomExploit drives the Venom-style overflow: declare a transfer, then
// push more bytes than the FIFO holds.
func venomExploit(d *sedspec.Driver, n int) error {
	if _, err := d.Out(testdev.PortCmd, []byte{testdev.CmdWriteBegin, 16}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := d.Out8(testdev.PortData, 0x41); err != nil {
			return err
		}
	}
	return nil
}

func TestVenomBlockedByParameterCheck(t *testing.T) {
	m, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	chk := sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyParameter))

	d := sedspec.NewDriver(att)
	err := venomExploit(d, 32)
	if err == nil {
		t.Fatal("exploit was not blocked")
	}
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) {
		t.Fatalf("error %v does not wrap an Anomaly", err)
	}
	if anom.Strategy != checker.StrategyParameter {
		t.Errorf("strategy = %v, want parameter-check", anom.Strategy)
	}
	if !m.Halted() {
		t.Error("protection mode should halt the machine")
	}
	// The device's control structure must be untouched past the FIFO: the
	// block happened before the 17th byte reached the device.
	if got, _ := att.Dev().State().IntByName("data_pos"); got != 16 {
		t.Errorf("data_pos = %d, want 16 (exploit stopped at capacity)", got)
	}
	if chk.Stats().ParamAnomalies == 0 {
		t.Error("parameter anomaly not counted")
	}
}

func TestUnprotectedVenomCorruptsDevice(t *testing.T) {
	_, att := setup(t, testdev.Options{})
	d := sedspec.NewDriver(att)
	if err := venomExploit(d, 28); err != nil {
		t.Fatalf("unprotected exploit failed: %v", err)
	}
	// Unprotected, the 28 writes walked past the FIFO through
	// data_pos/data_len and into irq_cb.
	prog := att.Dev().Program()
	if got := att.Dev().State().FuncPtr(prog.FieldIndex("irq_cb")); got == uint64(prog.HandlerIndex("testdev_complete")) {
		t.Error("irq_cb should have been corrupted on the unprotected device")
	}
}

// hijackExploit overflows the FIFO to overwrite irq_cb with the gadget
// handler's index, then triggers the completion callback via CmdRead.
func hijackExploit(d *sedspec.Driver, gadget uint64) error {
	if _, err := d.Out(testdev.PortCmd, []byte{testdev.CmdWriteBegin, 16}); err != nil {
		return err
	}
	payload := make([]byte, 28)
	for i := 0; i < 18; i++ {
		payload[i] = 0x41
	}
	// Bytes 18..19 land on data_len: keep it sane so the later read
	// command doesn't crash before the hijacked callback fires.
	payload[18] = 16
	// Bytes 20..27 overwrite the 8-byte function pointer little-endian.
	payload[20] = byte(gadget)
	for _, v := range payload {
		if _, err := d.Out8(testdev.PortData, v); err != nil {
			return err
		}
	}
	_, err := d.Out8(testdev.PortCmd, testdev.CmdRead)
	return err
}

func TestHijackCaughtByIndirectJumpCheck(t *testing.T) {
	m, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	// Parameter check off: the overflow proceeds (shadow mirrors the
	// corruption); the indirect check must catch the pivot at call time.
	chk := sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyIndirectJump))

	prog := att.Dev().Program()
	gadget := uint64(prog.HandlerIndex("host_gadget"))
	err := hijackExploit(sedspec.NewDriver(att), gadget)
	if err == nil {
		t.Fatal("hijack was not blocked")
	}
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) {
		t.Fatalf("error %v does not wrap an Anomaly", err)
	}
	if anom.Strategy != checker.StrategyIndirectJump {
		t.Errorf("strategy = %v, want indirect-jump-check", anom.Strategy)
	}
	if !m.Halted() {
		t.Error("machine should be halted")
	}
	// The gadget must never have run on the real device.
	if got, _ := att.Dev().State().IntByName("status"); got == 0xFF {
		t.Error("gadget executed despite protection")
	}
	_ = chk
}

func TestUnprotectedHijackExecutesGadget(t *testing.T) {
	_, att := setup(t, testdev.Options{})
	prog := att.Dev().Program()
	gadget := uint64(prog.HandlerIndex("host_gadget"))
	if err := hijackExploit(sedspec.NewDriver(att), gadget); err != nil {
		t.Fatalf("unprotected hijack failed: %v", err)
	}
	if got, _ := att.Dev().State().IntByName("status"); got != 0xFF {
		t.Errorf("status = %#x, want 0xFF (gadget executed)", got)
	}
}

func TestPatchedDeviceOverflowHitsConditionalCheck(t *testing.T) {
	// On the patched device the overflow path is a branch arm never taken
	// in training; the conditional-jump check flags it.
	m, att := setup(t, testdev.Options{FixVenom: true})
	spec := learn(t, att).Spec
	sedspec.Protect(att, spec, checker.WithStrategies(checker.StrategyConditionalJump))

	d := sedspec.NewDriver(att)
	err := venomExploit(d, 17) // 17th byte takes the patched bail-out arm
	if err == nil {
		t.Fatal("overflow attempt was not flagged")
	}
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) {
		t.Fatalf("error %v does not wrap an Anomaly", err)
	}
	if anom.Strategy != checker.StrategyConditionalJump {
		t.Errorf("strategy = %v, want conditional-jump-check", anom.Strategy)
	}
	if !m.Halted() {
		t.Error("machine should be halted")
	}
}

func TestRareCommandIsFalsePositive(t *testing.T) {
	// CmdDiag is legitimate but absent from training: the conditional
	// check flags it — the paper's false-positive mechanism (§VII-B1).
	_, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	sedspec.Protect(att, spec)

	d := sedspec.NewDriver(att)
	_, err := d.Out8(testdev.PortCmd, testdev.CmdDiag)
	if err == nil {
		t.Fatal("rare command should violate the specification")
	}
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyConditionalJump {
		t.Errorf("want conditional-jump anomaly, got %v", err)
	}
}

func TestEnhancementModeWarnsAndContinues(t *testing.T) {
	m, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	chk := sedspec.Protect(att, spec, checker.WithMode(checker.ModeEnhancement))

	d := sedspec.NewDriver(att)
	// The rare command now warns instead of blocking.
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
		t.Fatalf("enhancement mode blocked a conditional anomaly: %v", err)
	}
	if m.Halted() {
		t.Fatal("machine halted in enhancement mode")
	}
	if len(chk.Warnings()) != 1 {
		t.Fatalf("warnings = %d, want 1", len(chk.Warnings()))
	}
	if chk.Stats().Resyncs != 1 {
		t.Errorf("resyncs = %d, want 1", chk.Stats().Resyncs)
	}
	// Subsequent benign traffic still passes.
	if err := benignTrain(d); err != nil {
		t.Fatalf("benign traffic after warning blocked: %v", err)
	}
	// Parameter anomalies still block in enhancement mode.
	err := venomExploit(d, 32)
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyParameter {
		t.Fatalf("want blocking parameter anomaly, got %v", err)
	}
	if !m.Halted() {
		t.Error("parameter anomaly should halt even in enhancement mode")
	}
}

func TestShadowStateTracksDevice(t *testing.T) {
	_, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	chk := sedspec.Protect(att, spec)

	d := sedspec.NewDriver(att)
	if err := benignTrain(d); err != nil {
		t.Fatalf("benign: %v", err)
	}
	shadow := chk.Shadow()
	real := att.Dev().State()
	for _, name := range []string{"data_pos", "data_len", "status", "cmd"} {
		sv, _ := shadow.IntByName(name)
		rv, _ := real.IntByName(name)
		if sv != rv {
			t.Errorf("shadow %s = %d, device %s = %d", name, sv, name, rv)
		}
	}
}

func TestSpecDotAndString(t *testing.T) {
	_, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	if s := spec.String(); len(s) == 0 {
		t.Error("empty String()")
	}
	dot := spec.Dot()
	if len(dot) == 0 {
		t.Error("empty Dot()")
	}
}

func TestLearnIsDeterministic(t *testing.T) {
	_, att1 := setup(t, testdev.Options{})
	_, att2 := setup(t, testdev.Options{})
	s1 := learn(t, att1).Spec
	s2 := learn(t, att2).Spec
	if fmt.Sprintf("%+v", s1.Stats) != fmt.Sprintf("%+v", s2.Stats) {
		t.Errorf("stats differ:\n%+v\n%+v", s1.Stats, s2.Stats)
	}
	if s1.Dot() != s2.Dot() {
		t.Error("ES-CFG structure differs between identical learns")
	}
}
