// Benchmarks regenerating the paper's tables and figures (one Benchmark
// per experiment; see DESIGN.md's per-experiment index), plus
// micro-benchmarks of the pipeline stages and the ablations of DESIGN.md
// §4. Run with:
//
//	go test -bench=. -benchmem
package sedspec_test

import (
	"io"
	"testing"
	"time"

	"sedspec"
	"sedspec/internal/bench"
	"sedspec/internal/checker"
	"sedspec/internal/cvesim"
	"sedspec/internal/devices/fdc"
	"sedspec/internal/itccfg"
	"sedspec/internal/machine"
	"sedspec/internal/simclock"
	"sedspec/internal/trace"
	"sedspec/internal/workload"
)

// BenchmarkTable1ParamSelection regenerates Table I (device-state
// parameter selection across the five devices).
func BenchmarkTable1ParamSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(true)
		if err != nil {
			b.Fatal(err)
		}
		bench.WriteTable1(io.Discard, rows)
	}
}

// BenchmarkTable2FalsePositives regenerates Table II (false positives over
// simulated hours) at a reduced scale per iteration.
func BenchmarkTable2FalsePositives(b *testing.B) {
	cfg := bench.DefaultFPConfig()
	cfg.Hours = []int{1}
	cfg.RarePerCase *= 10
	target := bench.TargetByName("fdc", true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(target, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Detection regenerates Table III's detection matrix (all
// nine case studies, three strategies each).
func BenchmarkTable3Detection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3Detection()
		if err != nil {
			b.Fatal(err)
		}
		bench.WriteTable3(io.Discard, rows, nil, nil)
	}
}

// BenchmarkTable3Coverage regenerates Table III's effective-coverage
// column for one device.
func BenchmarkTable3Coverage(b *testing.B) {
	target := bench.TargetByName("scsi", true)
	for i := 0; i < b.N; i++ {
		if _, err := bench.EffectiveCoverage(target, 400, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Throughput regenerates a Figure 3 data point (normalized
// storage throughput, SDHCI, 64 KiB blocks).
func BenchmarkFigure3Throughput(b *testing.B) {
	target := bench.TargetByName("sdhci", true)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure34(target, []int{64}, 2, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Latency regenerates a Figure 4 data point (normalized
// storage latency, SCSI, 4 KiB blocks).
func BenchmarkFigure4Latency(b *testing.B) {
	target := bench.TargetByName("scsi", true)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure34(target, []int{4}, 1, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Network regenerates Figure 5 (PCNet bandwidth series and
// ping latency) at a reduced frame count.
func BenchmarkFigure5Network(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure5(100); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (DESIGN.md §4) ---

// BenchmarkAblationReduction measures spec size and simulated steps with
// control-flow reduction on vs off.
func BenchmarkAblationReduction(b *testing.B) {
	target := bench.TargetByName("fdc", true)
	for i := 0; i < b.N; i++ {
		row, err := bench.AblationReduction(target, 60)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(row.BlocksReduced), "blocks-reduced")
		b.ReportMetric(float64(row.BlocksUnreduced), "blocks-unreduced")
	}
}

// BenchmarkAblationFilters measures trace packet volume with the paper's
// IPT filters on vs off.
func BenchmarkAblationFilters(b *testing.B) {
	target := bench.TargetByName("fdc", true)
	for i := 0; i < b.N; i++ {
		row, err := bench.AblationFilters(target)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(row.PacketsFiltered), "pkts-filtered")
		b.ReportMetric(float64(row.PacketsUnfiltered), "pkts-unfiltered")
	}
}

// BenchmarkAblationAccessControl measures checker effort with the command
// access table on vs off.
func BenchmarkAblationAccessControl(b *testing.B) {
	target := bench.TargetByName("sdhci", true)
	for i := 0; i < b.N; i++ {
		withAC, withoutAC, err := bench.AblationAccessSteps(target, 60)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(withAC), "steps-ac")
		b.ReportMetric(float64(withoutAC), "steps-noac")
	}
}

// --- pipeline micro-benchmarks ---

func fdcSetup(b *testing.B) (*machine.Machine, *machine.Attached) {
	b.Helper()
	m := machine.New(machine.WithMemory(1 << 20))
	dev := fdc.New(fdc.Options{})
	att := m.Attach(dev, machine.WithPIO(0, fdc.PortCount))
	return m, att
}

// BenchmarkLearnSpec measures end-to-end specification construction
// (trace, decode, analyze, observe, build) for the FDC.
func BenchmarkLearnSpec(b *testing.B) {
	_, att := fdcSetup(b)
	train := func(d *sedspec.Driver) error {
		return workload.TrainFDC(d, workload.TrainConfig{Light: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sedspec.Learn(att, train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckerRound measures per-I/O checker simulation cost (the
// runtime-protection hot path) against the raw unprotected dispatch. The
// two variants interleave within one loop so CPU frequency drift on shared
// hardware cannot skew the comparison; the reported metric is the
// protected/baseline time ratio.
func BenchmarkCheckerRound(b *testing.B) {
	mk := func(protect bool) *fdc.Guest {
		_, att := fdcSetup(b)
		if protect {
			spec, err := sedspec.Learn(att, func(d *sedspec.Driver) error {
				return workload.TrainFDC(d, workload.TrainConfig{Light: true})
			})
			if err != nil {
				b.Fatal(err)
			}
			sedspec.Protect(att, spec, checker.WithMode(checker.ModeEnhancement))
		}
		g := fdc.NewGuest(sedspec.NewDriver(att))
		if err := g.Reset(); err != nil {
			b.Fatal(err)
		}
		return g
	}
	base, prot := mk(false), mk(true)

	var baseNS, protNS int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := base.MSR(); err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		if _, err := prot.MSR(); err != nil {
			b.Fatal(err)
		}
		t2 := time.Now()
		baseNS += t1.Sub(t0).Nanoseconds()
		protNS += t2.Sub(t1).Nanoseconds()
	}
	if baseNS > 0 {
		b.ReportMetric(float64(protNS)/float64(baseNS), "prot/base")
		b.ReportMetric(float64(baseNS)/float64(b.N), "base-ns/round")
		b.ReportMetric(float64(protNS)/float64(b.N), "prot-ns/round")
	}
}

// BenchmarkTraceDecode measures IPT packet decoding and ITC-CFG
// construction throughput.
func BenchmarkTraceDecode(b *testing.B) {
	_, att := fdcSetup(b)
	prog := att.Dev().Program()
	col := trace.NewCollector(trace.DeviceConfig(prog))
	att.Interp().SetTracer(col)
	if err := workload.TrainFDC(sedspec.NewDriver(att), workload.TrainConfig{Light: true}); err != nil {
		b.Fatal(err)
	}
	att.Interp().SetTracer(nil)
	pkts := col.Packets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, err := trace.Decode(prog, pkts)
		if err != nil {
			b.Fatal(err)
		}
		g := itccfg.New(prog)
		for _, r := range runs {
			g.AddRun(r)
		}
	}
	b.ReportMetric(float64(len(pkts)), "packets")
}

// BenchmarkExploitReplay measures a full protected exploit replay (learn +
// attack) for the Venom case study.
func BenchmarkExploitReplay(b *testing.B) {
	poc := cvesim.ByCVE("CVE-2015-3456")
	for i := 0; i < b.N; i++ {
		if _, err := poc.RunProtected(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceDispatch measures raw emulated-device dispatch throughput
// (no checker) across the five devices' benign op mixes.
func BenchmarkDeviceDispatch(b *testing.B) {
	for _, target := range bench.Targets(true) {
		target := target
		b.Run(target.Name, func(b *testing.B) {
			m := machine.New(machine.WithMemory(1 << 20))
			dev, opts := target.Build()
			att := m.Attach(dev, opts...)
			rng := simclock.NewRand(5)
			s := target.NewSession(sedspec.NewDriver(att), rng)
			if err := s.Prepare(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Op(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkComparisonNioh regenerates the SEDSpec-vs-Nioh comparison table
// (all nine case studies under both systems).
func BenchmarkComparisonNioh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.ComparisonNioh()
		if err != nil {
			b.Fatal(err)
		}
		bench.WriteComparison(io.Discard, rows)
	}
}
