// Streaming telemetry acceptance tests: the delivery contract of the
// anomaly event hub under a concurrent multi-session hammer, and the
// guard that keeps an attached hub free on the sealed check path.
package sedspec_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sedspec"
	"sedspec/internal/bench"
	"sedspec/internal/checker"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/fuzzer"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
	"sedspec/internal/obs"
	"sedspec/internal/obs/journal"
	"sedspec/internal/obs/stream"
)

// TestStreamDeliverySemantics pins the hub's two delivery contracts at
// once, under -race with four concurrent protected sessions:
//
//   - a keeping-up subscriber sees every published event exactly once,
//     in strictly increasing sequence order, with zero drops;
//   - a slow subscriber that never drains loses events instead of
//     blocking publishers, and its accounting balances exactly:
//     enqueued + dropped == published.
func TestStreamDeliverySemantics(t *testing.T) {
	_, latt := setup(t, testdev.Options{})
	spec := learn(t, latt).Spec

	hub := stream.NewHub()
	// Large enough to hold every event even if the consumer stalls: 4
	// sessions x 2000 hammer ops publish at most one event each, plus
	// lifecycle events.
	keeper := hub.Subscribe(stream.WithBuffer(1 << 16))
	slow := hub.Subscribe(stream.WithBuffer(4)) // never drained
	defer slow.Close()

	// Enhancement mode plus a no-op halt keeps sessions publishing
	// audits and blocked anomalies straight through random I/O.
	sh := sedspec.NewSharedChecker(spec,
		checker.WithObs(obs.NewRegistry()),
		checker.WithMode(checker.ModeEnhancement),
		sedspec.WithStream(hub))

	const n = 4
	p := machine.NewPool(n, lifecycleBuild)
	chks := make([]*checker.Checker, n)
	for i, s := range p.Sessions() {
		chks[i] = sedspec.ProtectShared(s.Attached(), sh, checker.WithHalt(func() {}))
	}

	var (
		wg        sync.WaitGroup
		delivered uint64
		lastSeq   uint64
		orderErr  bool
		byKind    [stream.NumKinds]uint64
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			ev, ok := keeper.Recv(nil)
			if !ok {
				return
			}
			if ev.Seq <= lastSeq {
				orderErr = true
			}
			lastSeq = ev.Seq
			delivered++
			byKind[ev.Kind%stream.NumKinds]++
		}
	}()

	if err := p.Run(func(s *machine.Session) error {
		fuzzer.Hammer(s.Attached(), interp.SpacePIO, testdev.PortCmd, testdev.PortCount,
			uint64(1+s.ID()), 2000)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, c := range chks {
		c.Close()
	}
	// Close detaches the keeper from the hub but leaves its buffered
	// backlog readable; the consumer drains it and Recv reports done.
	keeper.Close()
	wg.Wait()

	if orderErr {
		t.Error("keeper observed a non-increasing sequence number")
	}
	if got := keeper.Dropped(); got != 0 {
		t.Errorf("keeping-up subscriber dropped %d events", got)
	}
	st := hub.Stats()
	if delivered != st.TotalPublished {
		t.Errorf("keeper delivered %d events, hub published %d", delivered, st.TotalPublished)
	}
	if lastSeq != hub.Seq() {
		t.Errorf("keeper's final seq %d != hub seq %d", lastSeq, hub.Seq())
	}
	if byKind[stream.KindAttach] != n || byKind[stream.KindDetach] != n {
		t.Errorf("lifecycle events: %d attach / %d detach, want %d each",
			byKind[stream.KindAttach], byKind[stream.KindDetach], n)
	}
	if byKind[stream.KindAnomaly]+byKind[stream.KindAudit] == 0 {
		t.Error("hammer published no anomaly or audit events")
	}
	// The slow subscriber's books must balance: every published event was
	// either enqueued to it or counted as dropped, nothing vanished.
	if got := slow.Enqueued() + slow.Dropped(); got != st.TotalPublished {
		t.Errorf("slow subscriber accounting: enqueued %d + dropped %d != published %d",
			slow.Enqueued(), slow.Dropped(), st.TotalPublished)
	}
	if slow.Dropped() == 0 {
		t.Error("slow subscriber with a 4-slot buffer never dropped")
	}
	t.Logf("published %d events (%d anomalies, %d audits), slow sub dropped %d",
		st.TotalPublished, byKind[stream.KindAnomaly], byKind[stream.KindAudit], slow.Dropped())
}

// TestStreamOverheadGuard pins the hub's price on the sealed check
// path: a checker with a hub attached (and zero anomalies) must stay
// within 1% of one with streaming disabled, and must not allocate.
// The hub additionally carries an attached durable journal — the
// strongest form of the contract: clean rounds never publish, so even
// with persistence enabled the sealed path never reaches the journal
// writer and its cost stays zero.
func TestStreamOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the hub/no-hub ratio")
	}
	target := bench.TargetByName("fdc", true)
	r, err := bench.NewCheckerReplay(target, 60)
	if err != nil {
		t.Fatal(err)
	}
	hub := stream.NewHub()
	jrnl, err := journal.Open(journal.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	jrnl.Attach(hub)
	defer jrnl.Close()
	on := r.NewChecker(checker.WithObs(obs.NewRegistry()), sedspec.WithStream(hub))
	off := r.NewChecker(checker.WithObs(obs.NewRegistry()), sedspec.WithStream(nil))

	const chunk = 50_000
	warm := func(chk *checker.Checker) {
		t.Helper()
		for i := 0; i < 2*len(r.Reqs); i++ {
			if err := r.Step(chk, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm(on)
	warm(off)
	// Lifecycle events (the checker's attach) drain into the journal
	// asynchronously; wait for the writer to catch up with everything
	// the hub has published, then require the timed clean rounds below
	// to add nothing.
	catchup := time.Now().Add(5 * time.Second)
	for jrnl.Stats().Appended < hub.Stats().TotalPublished {
		if time.Now().After(catchup) {
			t.Fatalf("journal writer never caught up: %d appended, %d published",
				jrnl.Stats().Appended, hub.Stats().TotalPublished)
		}
		time.Sleep(time.Millisecond)
	}
	baseAppended := jrnl.Stats().Appended
	minAllocs := uint64(^uint64(0))
	timeOf := func(chk *checker.Checker) float64 {
		t.Helper()
		elapsed, allocs, err := r.TimeChunk(chk, 0, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if allocs < minAllocs {
			minAllocs = allocs
		}
		return float64(elapsed) / chunk
	}
	// Interleave trials and keep each side's best: the minimum is the
	// least-noisy estimate of the path's true cost on this machine.
	minOn, minOff := timeOf(on), timeOf(off)
	for trial := 0; trial < 5; trial++ {
		if v := timeOf(off); v < minOff {
			minOff = v
		}
		if v := timeOf(on); v < minOn {
			minOn = v
		}
	}
	// Judge allocations on the minimum across trials: background runtime
	// activity can land a stray malloc in any one chunk, but a hot path
	// that allocates does so in every chunk.
	if minAllocs != 0 {
		t.Fatalf("steady-state chunks allocated %d times in every trial", minAllocs)
	}
	ratio := minOn / minOff
	t.Logf("sealed check: hub attached %.1f ns/op, disabled %.1f ns/op, ratio %.3f", minOn, minOff, ratio)
	// Budget: 1% (the streaming layer's contract — clean rounds never
	// touch the hub) plus 3% measurement slack for interleaved-chunk
	// timing noise.
	if ratio > 1.04 {
		t.Errorf("attached hub costs %.1f%% on the sealed path, want <= 1%% (+slack)", 100*(ratio-1))
	}
	// The clean rounds published nothing, so the journal saw nothing new:
	// persistence must be invisible to a healthy fleet.
	if st := jrnl.Stats(); st.Appended != baseAppended {
		t.Errorf("clean replay appended %d journal records, want 0", st.Appended-baseAppended)
	}
}

// TestStreamSubscriberChurn hammers the hub's attach/detach edges: four
// protected sessions publish continuously while short-lived subscribers
// join and leave mid-stream. For every subscriber — however brief its
// window — the per-kind books must balance exactly:
//
//	published-in-window[k] == enqueued[k] + dropped[k]
//
// because Subscribe, Close, and every Publish serialize on the hub
// lock. Run under -race this also proves the churn path is data-race
// free.
func TestStreamSubscriberChurn(t *testing.T) {
	_, latt := setup(t, testdev.Options{})
	spec := learn(t, latt).Spec

	hub := stream.NewHub()
	sh := sedspec.NewSharedChecker(spec,
		checker.WithObs(obs.NewRegistry()),
		checker.WithMode(checker.ModeEnhancement),
		sedspec.WithStream(hub))

	const n = 4
	p := machine.NewPool(n, lifecycleBuild)
	chks := make([]*checker.Checker, n)
	for i, s := range p.Sessions() {
		chks[i] = sedspec.ProtectShared(s.Attached(), sh, checker.WithHalt(func() {}))
	}

	// Churners: subscribe with tiny buffers (forcing drops), drain a
	// little, close, check the invariant, repeat — all while the hammer
	// publishes from four goroutines.
	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	var windows, eventsSeen uint64
	var badWindows int32
	for c := 0; c < 3; c++ {
		churnWG.Add(1)
		go func(id int) {
			defer churnWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stopChurn:
					return
				default:
				}
				sub := hub.Subscribe(stream.WithBuffer(2 + id))
				for k := 0; k < 8; k++ {
					if _, ok := sub.TryRecv(); ok {
						atomic.AddUint64(&eventsSeen, 1)
					}
				}
				sub.Close()
				pub, enq, drop := sub.Accounting()
				for k := 0; k < stream.NumKinds; k++ {
					if pub[k] != enq[k]+drop[k] {
						atomic.AddInt32(&badWindows, 1)
						t.Errorf("churner %d window %d kind %s: published %d != enqueued %d + dropped %d",
							id, i, stream.Kind(k), pub[k], enq[k], drop[k])
						return
					}
				}
				atomic.AddUint64(&windows, 1)
			}
		}(c)
	}

	if err := p.Run(func(s *machine.Session) error {
		fuzzer.Hammer(s.Attached(), interp.SpacePIO, testdev.PortCmd, testdev.PortCount,
			uint64(1+s.ID()), 2000)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(stopChurn)
	churnWG.Wait()
	for _, c := range chks {
		c.Close()
	}

	if atomic.LoadInt32(&badWindows) != 0 {
		t.Fatalf("%d subscriber windows failed the accounting invariant", badWindows)
	}
	if windows == 0 {
		t.Fatal("no churn windows completed while sessions hammered")
	}
	// A subscriber that outlives the workload must balance against the
	// hub's full totals too.
	late := hub.Subscribe(stream.WithBuffer(1))
	late.Close()
	if pub, enq, drop := late.Accounting(); pub != enq || pub != drop || pub != [stream.NumKinds]uint64{} {
		t.Errorf("idle-window subscriber books not empty: %v %v %v", pub, enq, drop)
	}
	t.Logf("churn: %d subscriber windows balanced (%d events observed) against %d published",
		windows, eventsSeen, hub.Stats().TotalPublished)
}
