package sedspec_test

import (
	"errors"
	"fmt"

	"sedspec"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/machine"
)

// Example shows the complete SEDSpec lifecycle on a small device: learn
// the execution specification from benign traffic, attach the ES-Checker,
// and watch an overflow exploit get blocked while normal I/O flows.
func Example() {
	m := sedspec.NewMachine()
	dev := testdev.New(testdev.Options{}) // vulnerable by default
	att := m.Attach(dev, machine.WithPIO(testdev.PortCmd, testdev.PortCount))

	// Learn: trace benign samples, select device-state parameters, build
	// the ES-CFG.
	spec, err := sedspec.Learn(att, func(d *sedspec.Driver) error {
		for _, n := range []byte{4, 16} {
			if _, err := d.Out(testdev.PortCmd, []byte{testdev.CmdWriteBegin, n}); err != nil {
				return err
			}
			for i := byte(0); i < n; i++ {
				if _, err := d.Out8(testdev.PortData, i); err != nil {
					return err
				}
			}
			if _, err := d.Out8(testdev.PortCmd, testdev.CmdRead); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		fmt.Println("learn failed:", err)
		return
	}

	// Protect: every guest I/O is now simulated against the
	// specification before the device consumes it.
	sedspec.Protect(att, spec)
	d := sedspec.NewDriver(att)

	// Benign traffic passes.
	if _, err := d.Out(testdev.PortCmd, []byte{testdev.CmdWriteBegin, 8}); err != nil {
		fmt.Println("benign blocked:", err)
		return
	}
	fmt.Println("benign write accepted")

	// The overflow exploit is stopped at the buffer boundary.
	for i := 0; i < 32; i++ {
		if _, err = d.Out8(testdev.PortData, 0x41); err != nil {
			break
		}
	}
	var anom *sedspec.Anomaly
	if errors.As(err, &anom) {
		fmt.Println("exploit blocked by", anom.Strategy)
	}

	// Output:
	// benign write accepted
	// exploit blocked by parameter-check
}
