// Coverage-map acceptance tests: the ES-CFG coverage counters' overhead
// guard on the sealed path, the training-coverage contract on every
// detected CVE, the merge property across concurrent shared sessions,
// drift reporting across an enhancement, and lifecycle span tracing.
package sedspec_test

import (
	"fmt"
	"sync"
	"testing"

	"sedspec"
	"sedspec/internal/bench"
	"sedspec/internal/checker"
	"sedspec/internal/cvesim"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/machine"
	"sedspec/internal/obs/span"
)

// TestCoverageOverheadGuard pins the coverage counters' price on the
// sealed check path: interleaved replay chunks with coverage on (the
// default) and off must stay within 5% (plus measurement slack) of each
// other, and the counters-on steady state must allocate nothing — the
// counters live in a preallocated per-generation arena.
func TestCoverageOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the coverage on/off ratio")
	}
	target := bench.TargetByName("fdc", true)
	r, err := bench.NewCheckerReplay(target, 60)
	if err != nil {
		t.Fatal(err)
	}
	on := r.NewChecker()
	off := r.NewChecker(checker.WithCoverage(false))
	if on.Coverage() == nil || off.Coverage() != nil {
		t.Fatal("checker coverage wiring wrong")
	}

	const chunk = 50_000
	warm := func(chk *checker.Checker) {
		t.Helper()
		for i := 0; i < 2*len(r.Reqs); i++ {
			if err := r.Step(chk, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm(on)
	warm(off)
	minAllocs := uint64(^uint64(0))
	timeOf := func(chk *checker.Checker) float64 {
		t.Helper()
		elapsed, allocs, err := r.TimeChunk(chk, 0, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if allocs < minAllocs {
			minAllocs = allocs
		}
		return float64(elapsed) / chunk
	}
	// Interleave trials and keep each side's best: the minimum is the
	// least-noisy estimate of the path's true cost on this machine.
	minOn, minOff := timeOf(on), timeOf(off)
	for trial := 0; trial < 5; trial++ {
		if v := timeOf(off); v < minOff {
			minOff = v
		}
		if v := timeOf(on); v < minOn {
			minOn = v
		}
	}
	// The check path must allocate nothing in steady state. Judge the
	// minimum across trials: the runtime's own background activity
	// (scavenger timers, GC worker spawns) occasionally lands a malloc or
	// two inside a timed chunk, but an engine that allocates on the check
	// path shows it in every chunk.
	if minAllocs != 0 {
		t.Fatalf("steady-state chunks allocated %d times in every trial", minAllocs)
	}
	ratio := minOn / minOff
	t.Logf("sealed check: coverage on %.1f ns/op, off %.1f ns/op, ratio %.3f", minOn, minOff, ratio)
	// Budget: 5% contract plus 3% measurement slack for shared-runner
	// timing jitter at the ~10 ns scale being resolved.
	if ratio > 1.08 {
		t.Errorf("coverage counters cost %.1f%% on the sealed path, want <= 5%% (+slack)", 100*(ratio-1))
	}

	p := on.CoverageProfile()
	if p == nil || p.Rounds == 0 {
		t.Fatalf("coverage-on checker produced no runtime profile: %+v", p)
	}
	var edgeHits uint64
	for _, e := range p.Edges {
		edgeHits += e.Hits
	}
	if edgeHits == 0 {
		t.Error("no trained-edge hits after a benign replay")
	}
}

// TestCVETrainingCoverage replays every CVE proof of concept under
// protection and asserts the coverage map's core promise: the transition
// each blocked exploit needed is marked as never exercised by the
// training corpus (edge_trained false), while the run's own coverage
// profile proves benign traffic did exercise the spec.
func TestCVETrainingCoverage(t *testing.T) {
	for _, p := range cvesim.All() {
		p := p
		t.Run(p.CVE, func(t *testing.T) {
			outc, err := p.RunProtected()
			if err != nil {
				t.Fatal(err)
			}
			if !outc.Detected {
				if len(p.Expected) == 0 {
					t.Skip("documented false negative: nothing to audit")
				}
				t.Fatalf("PoC not detected")
			}
			cov := checker.TrainingCoverage(outc.Spec, outc.Anomaly)
			if cov.EdgeKind == "" {
				t.Fatalf("anomaly carries no edge kind: %+v", outc.Anomaly)
			}
			if cov.EdgeTrained {
				t.Errorf("blocked transition (%s, sel %#x) claims training coverage: %+v",
					cov.EdgeKind, cov.EdgeSel, cov)
			}
			prof := outc.Checker.CoverageProfile()
			if prof == nil || prof.Rounds == 0 {
				t.Fatalf("protected run produced no runtime coverage: %+v", prof)
			}
			hit := 0
			for _, b := range prof.Blocks {
				if b.Hits > 0 {
					hit++
				}
			}
			if hit == 0 {
				t.Error("no spec block shows runtime hits despite a replayed exploit")
			}
		})
	}
}

// TestCoverageMergeProperty drives four concurrent sessions through one
// shared engine and asserts the merge property the aggregate view is
// built on: the element-wise sum of the per-session snapshots equals the
// shared aggregate — while the sessions are live, and again after they
// close and fold into the retired bank. Run under -race this also proves
// the counters and the fold are data-race free.
func TestCoverageMergeProperty(t *testing.T) {
	_, latt := setup(t, testdev.Options{})
	spec := learn(t, latt).Spec
	sh := sedspec.NewSharedChecker(spec)

	const n = 4
	iters := 10
	if testing.Short() {
		iters = 2
	}
	p := machine.NewPool(n, lifecycleBuild)
	chks := make([]*checker.Checker, n)
	for i, s := range p.Sessions() {
		chks[i] = sedspec.ProtectShared(s.Attached(), sh)
	}
	var aggDuringRun *sedspec.CoverageProfile
	var once sync.Once
	err := p.Run(func(s *machine.Session) error {
		d := sedspec.NewDriver(s.Attached())
		for it := 0; it < iters; it++ {
			if err := benignTrain(d); err != nil {
				return fmt.Errorf("session %d iter %d: %w", s.ID(), it, err)
			}
			// Read the aggregate mid-run from a worker goroutine: under
			// -race this exercises snapshot-vs-count concurrency.
			once.Do(func() { aggDuringRun = sh.CoverageProfile() })
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if aggDuringRun == nil || len(aggDuringRun.Blocks) == 0 {
		t.Fatalf("mid-run aggregate profile empty: %+v", aggDuringRun)
	}

	gen := sh.Generation()
	sum := &sedspec.CoverageSnapshot{}
	for _, chk := range chks {
		s := chk.Coverage()
		if s == nil {
			t.Fatal("shared session has no coverage map")
		}
		sum.Merge(s)
	}
	agg := sh.CoverageSnapshots()[gen]
	if agg == nil {
		t.Fatalf("no aggregate snapshot for generation %d", gen)
	}
	assertSnapshotsEqual(t, "live sessions", sum, agg)

	// Closing the sessions folds their maps into the retired bank; the
	// aggregate must not change.
	for _, chk := range chks {
		chk.Close()
	}
	retired := sh.CoverageSnapshots()[gen]
	assertSnapshotsEqual(t, "after close", sum, retired)

	prof := sh.CoverageProfile()
	if prof == nil || prof.Generation != gen {
		t.Fatalf("aggregate profile missing: %+v", prof)
	}
	// Profiled rounds (entry-block hits) must equal the rounds the engine
	// actually checked — coverage never under- or over-counts.
	if want := sh.Stats().Rounds; prof.Rounds != want {
		t.Errorf("aggregate rounds = %d, want %d (engine-checked rounds)", prof.Rounds, want)
	}
}

func assertSnapshotsEqual(t *testing.T, when string, a, b *sedspec.CoverageSnapshot) {
	t.Helper()
	if len(a.Blocks) != len(b.Blocks) || len(a.Edges) != len(b.Edges) {
		t.Fatalf("%s: shape mismatch: %d/%d blocks, %d/%d edges",
			when, len(a.Blocks), len(b.Blocks), len(a.Edges), len(b.Edges))
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Errorf("%s: block %d: sum %d != aggregate %d", when, i, a.Blocks[i], b.Blocks[i])
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Errorf("%s: edge %d: sum %d != aggregate %d", when, i, a.Edges[i], b.Edges[i])
		}
	}
}

// TestEnhancementDriftReport runs the enhancement pipeline and asserts
// the drift report names exactly what the enhancement legalized: the
// audited diagnostic command and its new case edge out of the command
// decision block — and that, after an enforcement run that never issues
// the command, the runtime overlay flags that same edge as never hit.
func TestEnhancementDriftReport(t *testing.T) {
	_, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec

	sh := sedspec.NewSharedChecker(spec, checker.WithMode(checker.ModeEnhancement))
	sedspec.ProtectShared(att, sh)
	d := sedspec.NewDriver(att)
	if err := benignTrain(d); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
		t.Fatalf("enhancement mode blocked the diagnostic command: %v", err)
	}
	audit := sh.Audit()
	if len(audit) != 1 {
		t.Fatalf("audit records = %d, want 1", len(audit))
	}

	_, eatt := setup(t, testdev.Options{})
	enhanced, err := sedspec.Enhance(eatt, benignTrain, audit)
	if err != nil {
		t.Fatal(err)
	}

	// Structural drift, parent (gen 1) to enhanced (gen 2).
	parentProf := spec.Seal().CoverageProfile(1, nil)
	childProf := enhanced.Seal().CoverageProfile(2, nil)
	drift := sedspec.DiffCoverage(parentProf, childProf)

	foundCmd := false
	for _, c := range drift.CommandsAdded {
		if c == uint64(testdev.CmdDiag) {
			foundCmd = true
		}
	}
	if !foundCmd {
		t.Errorf("drift does not list the legalized command %#x: added %v",
			testdev.CmdDiag, drift.CommandsAdded)
	}
	var diagEdge *sedspec.CoverageEdge
	for i, e := range drift.EdgesAdded {
		if e.Kind == "case" && e.Sel == uint64(testdev.CmdDiag) {
			diagEdge = &drift.EdgesAdded[i]
		}
	}
	if diagEdge == nil {
		t.Fatalf("drift does not list the legalized case edge for %#x: added %+v",
			testdev.CmdDiag, drift.EdgesAdded)
	}
	if len(drift.BlocksRemoved) != 0 {
		t.Errorf("enhancement should only add structure, removed %+v", drift.BlocksRemoved)
	}

	// Runtime overlay: enforce the enhanced spec over benign-only traffic
	// (never the diagnostic command) — the drift report must flag the
	// legalized edge as never hit at runtime.
	_, patt := setup(t, testdev.Options{})
	chk := sedspec.Protect(patt, enhanced)
	if err := benignTrain(sedspec.NewDriver(patt)); err != nil {
		t.Fatal(err)
	}
	runProf := chk.CoverageProfile()
	if runProf == nil || runProf.Rounds == 0 {
		t.Fatalf("no runtime profile: %+v", runProf)
	}
	runProf.Generation = 2
	overlay := sedspec.DiffCoverage(parentProf, runProf)
	flagged := false
	for _, e := range overlay.NeverHitEdges {
		if e.Kind == "case" && e.Sel == uint64(testdev.CmdDiag) {
			flagged = true
		}
	}
	if !flagged {
		t.Errorf("runtime drift does not flag the unexercised legalized edge: %+v",
			overlay.NeverHitEdges)
	}
}

// TestLifecycleSpans runs a learn → store put/get → shared seal → swap →
// enhance cycle and asserts each lifecycle operation recorded a span,
// with learn's phases nested under it.
func TestLifecycleSpans(t *testing.T) {
	span.Default().Reset()

	_, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	st, err := sedspec.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := sedspec.StoreKey(att, "benign-v1")
	meta, err := st.Put(spec, sedspec.SpecVersion{
		ProgramHash: key.ProgramHash, CorpusHash: key.CorpusHash, CreatedBy: "learn",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(att.Dev().Program(), meta); err != nil {
		t.Fatal(err)
	}

	sh := sedspec.NewSharedChecker(spec, checker.WithMode(checker.ModeEnhancement))
	sedspec.ProtectShared(att, sh)
	d := sedspec.NewDriver(att)
	if err := benignTrain(d); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
		t.Fatal(err)
	}
	_, eatt := setup(t, testdev.Options{})
	enhanced, err := sedspec.Enhance(eatt, benignTrain, sh.Audit())
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Swap(enhanced); err != nil {
		t.Fatal(err)
	}

	spans, dropped := span.Default().Snapshot()
	if dropped != 0 {
		t.Fatalf("spans dropped: %d", dropped)
	}
	byName := map[string][]*span.Span{}
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, want := range []string{"learn", "learn.trace", "learn.analyze", "learn.observe",
		"learn.build", "store.put", "store.get", "seal", "swap", "enhance"} {
		if len(byName[want]) == 0 {
			t.Errorf("no %q span recorded; have %v", want, names(spans))
		}
	}
	// Learn's phases nest under a learn span.
	learnIDs := map[uint64]bool{}
	for _, sp := range byName["learn"] {
		learnIDs[sp.ID] = true
	}
	for _, phase := range []string{"learn.trace", "learn.analyze", "learn.observe", "learn.build"} {
		for _, sp := range byName[phase] {
			if !learnIDs[sp.Parent] {
				t.Errorf("%s span parent %d is not a learn span", phase, sp.Parent)
			}
		}
	}
	// The swap span carries the generation it published.
	swapSpan := byName["swap"][len(byName["swap"])-1]
	found := false
	for _, a := range swapSpan.Attrs {
		if a.Key == "generation" && a.Val == "2" {
			found = true
		}
	}
	if !found {
		t.Errorf("swap span missing generation attr: %+v", swapSpan.Attrs)
	}
}

func names(spans []*span.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}
