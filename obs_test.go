// Observability acceptance tests: forensic context on every detected
// CVE, and the guard that keeps the always-on flight recorder from
// costing measurable overhead on the sealed check path.
package sedspec_test

import (
	"strings"
	"testing"
	"time"

	"sedspec"
	"sedspec/internal/bench"
	"sedspec/internal/checker"
	"sedspec/internal/cvesim"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/obs"
)

// TestCVEForensicContext replays every CVE proof of concept under
// protection and asserts the paper-facing forensic contract: a detected
// exploit's anomaly carries a frozen flight-recorder window whose final
// event is the blocked I/O itself.
func TestCVEForensicContext(t *testing.T) {
	for _, p := range cvesim.All() {
		p := p
		t.Run(p.CVE, func(t *testing.T) {
			outc, err := p.RunProtected()
			if err != nil {
				t.Fatal(err)
			}
			if !outc.Detected {
				if len(p.Expected) == 0 {
					t.Skip("documented false negative: no anomaly, no context")
				}
				t.Fatalf("PoC not detected")
			}
			a := outc.Anomaly
			if a == nil || a.Ctx == nil {
				t.Fatalf("detected anomaly without forensic context: %+v", a)
			}
			if a.Ctx.Device != a.Device {
				t.Errorf("context device %q != anomaly device %q", a.Ctx.Device, a.Device)
			}
			if len(a.Ctx.Events) == 0 {
				t.Fatal("forensic context holds no events")
			}
			final := a.Ctx.Events[len(a.Ctx.Events)-1]
			if final.Verdict != obs.VerdictBlocked {
				t.Errorf("final context event verdict = %v, want blocked", final.Verdict)
			}
			if final.Round != a.Round {
				t.Errorf("final context event round = %d, anomaly round = %d", final.Round, a.Round)
			}
			if obs.StrategyName(final.Strategy) != a.Strategy.String() {
				t.Errorf("final event strategy %q != anomaly strategy %q",
					obs.StrategyName(final.Strategy), a.Strategy)
			}
			timeline := a.Ctx.String()
			if !strings.Contains(timeline, "blocked") || !strings.Contains(timeline, a.Device) {
				t.Errorf("timeline missing verdict or device:\n%s", timeline)
			}
		})
	}
}

// TestRecorderOverheadGuard pins the flight recorder's price on the
// sealed check path: interleaved replay chunks with the recorder on and
// off must stay within 5% (plus measurement slack) of each other, and
// the recorder-on steady state must allocate nothing.
func TestRecorderOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the recorder/no-recorder ratio")
	}
	target := bench.TargetByName("fdc", true)
	r, err := bench.NewCheckerReplay(target, 60)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	on := r.NewChecker(checker.WithObs(reg))
	off := r.NewChecker(checker.WithRecorder(nil))
	if on.Recorder() == nil || off.Recorder() != nil {
		t.Fatal("checker recorder wiring wrong")
	}

	const chunk = 50_000
	warm := func(chk *checker.Checker) {
		t.Helper()
		for i := 0; i < 2*len(r.Reqs); i++ {
			if err := r.Step(chk, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm(on)
	warm(off)
	minAllocs := uint64(^uint64(0))
	timeOf := func(chk *checker.Checker) float64 {
		t.Helper()
		elapsed, allocs, err := r.TimeChunk(chk, 0, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if allocs < minAllocs {
			minAllocs = allocs
		}
		return float64(elapsed) / chunk
	}
	// Interleave trials and keep each side's best: the minimum is the
	// least-noisy estimate of the path's true cost on this machine.
	minOn, minOff := timeOf(on), timeOf(off)
	for trial := 0; trial < 5; trial++ {
		if v := timeOf(off); v < minOff {
			minOff = v
		}
		if v := timeOf(on); v < minOn {
			minOn = v
		}
	}
	// Judge allocations on the minimum across trials: background runtime
	// activity (scavenger timers, GC worker spawns) can land a stray
	// malloc in any one chunk, but a check path that allocates does so in
	// every chunk.
	if minAllocs != 0 {
		t.Fatalf("steady-state chunks allocated %d times in every trial", minAllocs)
	}
	ratio := minOn / minOff
	t.Logf("sealed check: recorder on %.1f ns/op, off %.1f ns/op, ratio %.3f", minOn, minOff, ratio)
	// Budget: the recorder's fixed ~15 ns per round was 5% of the switch
	// walker's round; threaded dispatch shrank the denominator, so the
	// same absolute cost now reads near 8%. 10% plus 3% measurement slack
	// keeps the guard catching recorder-cost regressions without failing
	// on simulation speedups.
	if ratio > 1.13 {
		t.Errorf("recorder costs %.1f%% on the sealed path, want <= 10%% (+slack)", 100*(ratio-1))
	}
	if rounds := on.Snapshot().Rounds; rounds == 0 {
		t.Error("recorder-on checker recorded no rounds")
	}
}

// TestRecorderLatencyIsVirtual: event timestamps come from the machine's
// simulated clock, not wall time, so replays are deterministic.
func TestRecorderLatencyIsVirtual(t *testing.T) {
	m, att := setup(t, testdev.Options{})
	lr := learn(t, att)
	reg := obs.NewRegistry()
	chk := sedspec.Protect(att, lr.Spec, checker.WithObs(reg))
	before := m.Clock.Now()
	if err := benignTrain(sedspec.NewDriver(att)); err != nil {
		t.Fatal(err)
	}
	if m.Clock.Now() <= before {
		t.Fatalf("virtual clock did not advance")
	}
	evs := chk.Recorder().Ring().Snapshot()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	var total uint64
	for _, ev := range evs {
		total += uint64(ev.Latency)
	}
	if total == 0 {
		t.Error("virtual latency never advanced across a benign workload")
	}
	last := evs[len(evs)-1]
	if got := time.Duration(last.Tick) * time.Microsecond; got > m.Clock.Now() {
		t.Errorf("event tick %v beyond machine clock %v", got, m.Clock.Now())
	}
}
