package sedspec_test

import (
	"testing"

	"sedspec"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/simclock"
)

// TestShadowConsistencyProperty drives long random benign traffic under
// protection and asserts the central soundness invariant of the checker:
// after every clean round, the shadow device state agrees with the real
// control structure on every selected parameter. Divergence here is what
// would eventually cause false positives or negatives.
func TestShadowConsistencyProperty(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run("", func(t *testing.T) {
			_, att := setup(t, testdev.Options{})
			r, err := sedspec.LearnFull(att, benignTrain)
			if err != nil {
				t.Fatal(err)
			}
			chk := sedspec.Protect(att, r.Spec)
			d := sedspec.NewDriver(att)
			rng := simclock.NewRand(seed)

			ops := []func() error{
				func() error { _, err := d.Out8(testdev.PortCmd, testdev.CmdReset); return err },
				func() error {
					n := byte(1 + rng.Intn(16))
					if _, err := d.Out(testdev.PortCmd, []byte{testdev.CmdWriteBegin, n}); err != nil {
						return err
					}
					for i := byte(0); i < n; i++ {
						if _, err := d.Out8(testdev.PortData, byte(rng.Uint64())); err != nil {
							return err
						}
					}
					return nil
				},
				func() error { _, err := d.Out8(testdev.PortCmd, testdev.CmdRead); return err },
				func() error { _, err := d.Out8(testdev.PortCmd, testdev.CmdStatus); return err },
				func() error { _, err := d.Out8(testdev.PortEnv, 0); return err },
			}

			prog := att.Dev().Program()
			for i := 0; i < 400; i++ {
				if err := ops[rng.Intn(len(ops))](); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, i, err)
				}
				for _, p := range r.Params.Params {
					sv := chk.Shadow().FieldValue(p.Field)
					rv := att.Dev().State().FieldValue(p.Field)
					if sv != rv {
						t.Fatalf("seed %d op %d: shadow %s = %#x, device = %#x",
							seed, i, p.Name, sv, rv)
					}
				}
			}
			// The FIFO contents must agree too (the checker mirrors
			// buffer writes).
			sb := chk.Shadow().Buf(prog.FieldIndex("fifo"))
			rb := att.Dev().State().Buf(prog.FieldIndex("fifo"))
			for i := range sb {
				if sb[i] != rb[i] {
					t.Fatalf("seed %d: shadow fifo[%d] = %#x, device = %#x", seed, i, sb[i], rb[i])
				}
			}
		})
	}
}
