// Command sedspecd is the resident SEDSpec fleet-enforcement daemon: a
// long-running process hosting named tenants, each with its own
// spec-store namespace and live enforcement sessions, driven over an
// HTTP/JSON control plane that shares a listener with the
// introspection surface (/healthz /fleet /metrics /anomalies /journal
// /coverage /buildinfo /debug/pprof).
//
// Usage:
//
//	sedspecd -store DIR [-addr 127.0.0.1:6060]
//	         [-drain-timeout 10s] [-overhead-budget NS]
//	         [-health-interval 5s]
//	         [-journal DIR|off] [-journal-fsync interval|always|none]
//	         [-journal-fsync-interval 250ms]
//	         [-journal-segment-bytes N] [-journal-max-segments N]
//
// Control plane (all JSON; see the README walkthrough):
//
//	POST   /tenants                       {"name": "prod"}
//	GET    /tenants
//	GET    /tenants/{tenant}
//	DELETE /tenants/{tenant}              drain + remove
//	POST   /tenants/{tenant}/specs        {"device": "fdc", "corpus": "benign"|"cve:<ID>", "mode": "...", "budget": N}
//	GET    /tenants/{tenant}/specs[?device=fdc]
//	POST   /tenants/{tenant}/sessions     {"device": "fdc", "workload": "benign"|"mixed"|"poc"|"idle", "count": N, ...}
//	GET    /tenants/{tenant}/sessions
//	DELETE /tenants/{tenant}/sessions/{id}
//	POST   /tenants/{tenant}/swap         {"device": "fdc", "enhance": true} or {"device": "fdc", "generation": N}
//	GET    /status
//	GET    /fleet[?tenant=prod]
//	GET    /journal[?since=15m&kinds=anomaly&tenant=prod&stats=1]
//
// By default the daemon keeps a durable telemetry journal under
// <store>/.journal (a dot-prefixed directory can never collide with a
// tenant namespace): anomalies, audits, swaps, spec publications, and
// session finals survive restarts, and a fresh boot replays the tail
// so `sedspec watch -recent` and /fleet carry pre-restart history.
// Pass -journal off to run fully in-memory.
//
// On SIGINT/SIGTERM the daemon drains: every session goroutine is
// stopped, checkers are retired (stats folded, one final detach event
// each), the journal flushes and fsyncs, and the process exits 0 on a
// clean drain or 1 when a session failed to stop within -drain-timeout.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"sedspec/internal/daemon"
	"sedspec/internal/obs/journal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6060", "control-plane + introspection listen address")
	store := flag.String("store", "", "spec-store root directory; tenant namespaces live under it (required)")
	drain := flag.Duration("drain-timeout", 10*time.Second, "deadline for stopping session goroutines on shutdown or tenant delete")
	budget := flag.Float64("overhead-budget", 0, "enforcement-overhead watchdog budget in ns per checked I/O (0 disables)")
	healthEvery := flag.Duration("health-interval", 5*time.Second, "fleet health aggregation period")
	jdir := flag.String("journal", "", "durable event journal directory (default <store>/.journal; \"off\" disables persistence)")
	jfsync := flag.String("journal-fsync", "interval", "journal fsync policy: interval, always, or none")
	jevery := flag.Duration("journal-fsync-interval", 250*time.Millisecond, "fsync period under the interval policy")
	jseg := flag.Int64("journal-segment-bytes", 4<<20, "journal segment rotation size")
	jmax := flag.Int("journal-max-segments", 16, "journal segments retained before the oldest is pruned")
	flag.Parse()

	if err := run(*addr, *store, *drain, *budget, *healthEvery,
		*jdir, *jfsync, *jevery, *jseg, *jmax); err != nil {
		fmt.Fprintln(os.Stderr, "sedspecd:", err)
		os.Exit(1)
	}
}

func run(addr, store string, drain time.Duration, budget float64, healthEvery time.Duration,
	jdir, jfsync string, jevery time.Duration, jseg int64, jmax int) error {
	if store == "" {
		return fmt.Errorf("-store is required (spec-store root directory)")
	}
	var jopts journal.Options
	switch jdir {
	case "off":
	case "":
		jdir = filepath.Join(store, ".journal")
		fallthrough
	default:
		policy, err := journal.ParsePolicy(jfsync)
		if err != nil {
			return err
		}
		jopts = journal.Options{
			Dir:           jdir,
			Fsync:         policy,
			FsyncInterval: jevery,
			SegmentBytes:  jseg,
			MaxSegments:   jmax,
		}
	}
	d, err := daemon.New(daemon.Options{
		StoreRoot:        store,
		DrainTimeout:     drain,
		OverheadBudgetNs: budget,
		HealthInterval:   healthEvery,
		Journal:          jopts,
	})
	if err != nil {
		return err
	}
	if err := d.Serve(addr); err != nil {
		return err
	}
	if j := d.Journal(); j != nil {
		st := j.Stats()
		fmt.Printf("sedspecd listening on %s (store %s, drain timeout %s, journal %s: %d records replayed)\n",
			d.Addr(), store, drain, st.Dir, st.Records)
	} else {
		fmt.Printf("sedspecd listening on %s (store %s, drain timeout %s, journal off)\n", d.Addr(), store, drain)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("sedspecd: received %s, draining ...\n", s)
	if err := d.Close(); err != nil {
		return err
	}
	fmt.Println("sedspecd: drained clean")
	return nil
}
