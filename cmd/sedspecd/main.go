// Command sedspecd is the resident SEDSpec fleet-enforcement daemon: a
// long-running process hosting named tenants, each with its own
// spec-store namespace and live enforcement sessions, driven over an
// HTTP/JSON control plane that shares a listener with the
// introspection surface (/healthz /fleet /metrics /anomalies
// /coverage /buildinfo /debug/pprof).
//
// Usage:
//
//	sedspecd -store DIR [-addr 127.0.0.1:6060]
//	         [-drain-timeout 10s] [-overhead-budget NS]
//	         [-health-interval 5s]
//
// Control plane (all JSON; see the README walkthrough):
//
//	POST   /tenants                       {"name": "prod"}
//	GET    /tenants
//	GET    /tenants/{tenant}
//	DELETE /tenants/{tenant}              drain + remove
//	POST   /tenants/{tenant}/specs        {"device": "fdc", "corpus": "benign"|"cve:<ID>", "mode": "...", "budget": N}
//	GET    /tenants/{tenant}/specs[?device=fdc]
//	POST   /tenants/{tenant}/sessions     {"device": "fdc", "workload": "benign"|"mixed"|"poc"|"idle", "count": N, ...}
//	GET    /tenants/{tenant}/sessions
//	DELETE /tenants/{tenant}/sessions/{id}
//	POST   /tenants/{tenant}/swap         {"device": "fdc", "enhance": true} or {"device": "fdc", "generation": N}
//	GET    /status
//	GET    /fleet[?tenant=prod]
//
// On SIGINT/SIGTERM the daemon drains: every session goroutine is
// stopped, checkers are retired (stats folded, one final detach event
// each), and the process exits 0 on a clean drain or 1 when a session
// failed to stop within -drain-timeout.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sedspec/internal/daemon"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6060", "control-plane + introspection listen address")
	store := flag.String("store", "", "spec-store root directory; tenant namespaces live under it (required)")
	drain := flag.Duration("drain-timeout", 10*time.Second, "deadline for stopping session goroutines on shutdown or tenant delete")
	budget := flag.Float64("overhead-budget", 0, "enforcement-overhead watchdog budget in ns per checked I/O (0 disables)")
	healthEvery := flag.Duration("health-interval", 5*time.Second, "fleet health aggregation period")
	flag.Parse()

	if err := run(*addr, *store, *drain, *budget, *healthEvery); err != nil {
		fmt.Fprintln(os.Stderr, "sedspecd:", err)
		os.Exit(1)
	}
}

func run(addr, store string, drain time.Duration, budget float64, healthEvery time.Duration) error {
	if store == "" {
		return fmt.Errorf("-store is required (spec-store root directory)")
	}
	d, err := daemon.New(daemon.Options{
		StoreRoot:        store,
		DrainTimeout:     drain,
		OverheadBudgetNs: budget,
		HealthInterval:   healthEvery,
	})
	if err != nil {
		return err
	}
	if err := d.Serve(addr); err != nil {
		return err
	}
	fmt.Printf("sedspecd listening on %s (store %s, drain timeout %s)\n", d.Addr(), store, drain)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("sedspecd: received %s, draining ...\n", s)
	if err := d.Close(); err != nil {
		return err
	}
	fmt.Println("sedspecd: drained clean")
	return nil
}
