package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"sedspec/internal/obs/stream"
)

// captureStdout redirects os.Stdout around fn so the watcher's printed
// events can be asserted on.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		_, _ = io.Copy(&buf, r)
		close(done)
	}()
	ferr := fn()
	_ = w.Close()
	<-done
	os.Stdout = old
	return buf.String(), ferr
}

// seqsOf parses the -json output lines back into their sequence
// numbers, in print order.
func seqsOf(t *testing.T, out string) []uint64 {
	t.Helper()
	var seqs []uint64
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			continue
		}
		var ev stream.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("undecodable output line %q: %v", line, err)
		}
		seqs = append(seqs, ev.Seq)
	}
	return seqs
}

func wantSeqs(t *testing.T, out string, want ...uint64) {
	t.Helper()
	got := seqsOf(t, out)
	if len(got) != len(want) {
		t.Fatalf("printed seqs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("printed seqs %v, want %v", got, want)
		}
	}
}

// anomalyServer scripts /anomalies: followFn serves the Nth follow=1
// request, recentFn the Nth recent fetch. Returning from the handler
// closes the response body, which the watcher sees as a dropped
// stream.
func anomalyServer(t *testing.T, followFn, recentFn func(call int, emit func(...uint64))) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	followN, recentN := 0, 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/anomalies" {
			http.NotFound(w, r)
			return
		}
		enc := json.NewEncoder(w)
		emit := func(seqs ...uint64) {
			for _, s := range seqs {
				_ = enc.Encode(stream.Event{Seq: s, Kind: stream.KindAnomaly, Device: "fdc"})
			}
		}
		follow := r.URL.Query().Get("follow") == "1"
		mu.Lock()
		var call int
		if follow {
			followN++
			call = followN
		} else {
			recentN++
			call = recentN
		}
		mu.Unlock()
		if follow {
			followFn(call, emit)
		} else {
			recentFn(call, emit)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestWatchReconnectResumes drops the follow stream after three events
// and asserts the reconnect replays only the events published while
// the watcher was down — the overlap with what was already printed is
// deduplicated by sequence number.
func TestWatchReconnectResumes(t *testing.T) {
	ts := anomalyServer(t,
		func(call int, emit func(...uint64)) {
			if call == 1 {
				emit(1, 2, 3) // then close: dropped stream
				return
			}
			emit(6, 7) // not reached at -n 5, but keeps later calls alive
		},
		func(_ int, emit func(...uint64)) {
			// The server retained 2..5; 2 and 3 were already printed.
			emit(2, 3, 4, 5)
		},
	)
	out, err := captureStdout(t, func() error {
		return runWatch([]string{"-json", "-n", "5", "-retry-max", "1s", ts.URL})
	})
	if err != nil {
		t.Fatalf("runWatch: %v", err)
	}
	wantSeqs(t, out, 1, 2, 3, 4, 5)
}

// TestWatchDetectsServerRestart gives the reconnect a recent buffer
// whose newest sequence is below the cursor — a fresh server process —
// and asserts the cursor resets instead of suppressing everything the
// new process publishes.
func TestWatchDetectsServerRestart(t *testing.T) {
	ts := anomalyServer(t,
		func(call int, emit func(...uint64)) {
			if call == 1 {
				emit(10, 11) // old process, then it dies
				return
			}
			emit(3, 4) // new process's live tail
		},
		func(_ int, emit func(...uint64)) {
			emit(1, 2) // new process's retained buffer: max 2 < cursor 11
		},
	)
	out, err := captureStdout(t, func() error {
		return runWatch([]string{"-json", "-n", "5", "-retry-max", "1s", ts.URL})
	})
	if err != nil {
		t.Fatalf("runWatch: %v", err)
	}
	wantSeqs(t, out, 10, 11, 1, 2, 3)
}

// TestWatchNoRetrySurfacesDrop pins the -retry=false contract: a
// server-side close is an error, not a silent exit.
func TestWatchNoRetrySurfacesDrop(t *testing.T) {
	ts := anomalyServer(t,
		func(_ int, emit func(...uint64)) { emit(1) },
		func(_ int, emit func(...uint64)) { emit(1) },
	)
	out, err := captureStdout(t, func() error {
		return runWatch([]string{"-json", "-retry=false", ts.URL})
	})
	if err == nil {
		t.Fatal("runWatch with -retry=false returned nil after server closed the stream")
	}
	wantSeqs(t, out, 1)
}

// TestWatchRecentOneShot pins -recent: print the retained buffer once,
// no follow request, no retry loop.
func TestWatchRecentOneShot(t *testing.T) {
	ts := anomalyServer(t,
		func(_ int, _ func(...uint64)) {
			t.Error("-recent must not open a follow stream")
		},
		func(_ int, emit func(...uint64)) { emit(1, 2, 3) },
	)
	out, err := captureStdout(t, func() error {
		return runWatch([]string{"-json", "-recent", ts.URL})
	})
	if err != nil {
		t.Fatalf("runWatch: %v", err)
	}
	wantSeqs(t, out, 1, 2, 3)
}
