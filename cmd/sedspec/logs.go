package main

import (
	"flag"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"

	"sedspec/internal/obs/stream"
)

// runLogs implements `sedspec logs ADDR`: query a daemon's durable
// telemetry journal — the historical record that survives restarts —
// with time, kind, tenant, and device filters. With -follow the
// journal history is spliced seamlessly into the live hub tail: both
// sides carry the hub sequence number, so the watcher's dedup cursor
// guarantees each event prints exactly once even when the journal and
// the hub's recent ring overlap.
func runLogs(args []string) error {
	fs := flag.NewFlagSet("logs", flag.ExitOnError)
	since := fs.String("since", "", "lower time bound: duration ago (15m), RFC3339, or unix nanoseconds")
	until := fs.String("until", "", "upper time bound: duration ago, RFC3339, or unix nanoseconds")
	kinds := fs.String("kinds", "", "comma-separated event kinds (anomaly,audit,swap,attach,detach,spec,health)")
	tenant := fs.String("tenant", "", "only this tenant's events")
	device := fs.String("device", "", "only this device's events")
	asJSON := fs.Bool("json", false, "print raw NDJSON instead of the pretty form")
	n := fs.Int("n", 0, "exit after N events (0: all history, then follow forever with -follow)")
	follow := fs.Bool("follow", false, "after the history, keep following the live stream")
	retryMax := fs.Duration("retry-max", 15*time.Second, "backoff cap between reconnect attempts under -follow")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: sedspec logs [flags] ADDR")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	addr := fs.Arg(0)
	if addr == "" {
		fs.Usage()
		return fmt.Errorf("ADDR required (the daemon's -addr address)")
	}
	if *kinds != "" {
		if _, err := stream.ParseKinds(*kinds); err != nil {
			return err
		}
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	w := &watcher{
		base:     strings.TrimRight(addr, "/"),
		kinds:    *kinds,
		asJSON:   *asJSON,
		limit:    *n,
		retry:    *follow,
		retryMax: *retryMax,
		tenant:   *tenant,
		device:   *device,
	}

	q := url.Values{}
	if *since != "" {
		q.Set("since", *since)
	}
	if *until != "" {
		q.Set("until", *until)
	}
	if *kinds != "" {
		q.Set("kinds", *kinds)
	}
	if *tenant != "" {
		q.Set("tenant", *tenant)
	}
	if *device != "" {
		q.Set("device", *device)
	}
	q.Set("limit", strconv.Itoa(*n)) // 0 = unlimited

	if err := w.replayJournal(q); err != nil {
		if err == errNoJournal {
			return fmt.Errorf("%s runs without a journal (-journal off); only `sedspec watch` is available", w.base)
		}
		return err
	}
	if !*follow || w.done() {
		return nil
	}
	// -until bounds history; following past it would contradict the ask.
	if *until != "" {
		return fmt.Errorf("-follow and -until are mutually exclusive")
	}
	return w.follow()
}
