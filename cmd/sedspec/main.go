// Command sedspec is the SEDSpec workflow driver: learn an execution
// specification for an emulated device, inspect it, save and reload it,
// and demonstrate runtime protection against the device's CVE exploit.
//
// Usage:
//
//	sedspec -device fdc|ehci|pcnet|sdhci|scsi [-out spec.json]
//	        [-spec-in spec.bin] [-spec-out spec.bin] [-spec-store DIR]
//	        [-dot cfg.dot] [-attack] [-enhance]
//	        [-mode protection|enhancement] [-metrics metrics.json]
//	        [-trace-on-anomaly DIR] [-coverage-dir DIR] [-spans FILE]
//	        [-listen ADDR]
//
// Without flags it learns the specification, prints its summary and the
// selected device-state parameters, and replays the benign workload under
// protection. With -attack it additionally replays the device's CVE
// proof-of-concept and reports the verdict.
//
// Spec lifecycle: -spec-out writes the learned specification in the
// compact binary codec, -spec-in loads one instead of learning (the two
// compose: load, then re-export), and -spec-store learns through a
// versioned spec store — a second run with the same device and training
// corpus is a cache hit that skips learning entirely. With -enhance the
// benign replay runs in enhancement mode, the device's rare legitimate
// command is issued so it is audited as a warning, and the enhanced
// spec is published to the store as the next generation (diff the pair
// with the report subcommand).
//
// Observability: -metrics periodically exports the checker metrics
// registry as JSON (final export on exit), -trace-on-anomaly writes each
// blocked PoC's flight-recorder timeline as DIR/<CVE>.trace,
// -coverage-dir writes the run's ES-CFG coverage profile (and each
// blocked PoC's anomaly training-coverage record) as JSON, -spans writes
// the lifecycle span trace as Chrome trace_event JSON, and -listen
// serves the unified introspection server (/healthz, /fleet, /metrics,
// /anomalies live tail, /coverage, /buildinfo, /debug/vars,
// /debug/pprof) on the given address; -pprof remains as a deprecated
// alias. Final exports also run on SIGINT/SIGTERM.
//
// The report subcommand diffs two spec generations' structure and
// coverage; the watch subcommand tails a running process's telemetry
// stream:
//
//	sedspec report -spec-store DIR -device fdc -from 1 -to 2 [-json]
//	sedspec watch ADDR [-kinds anomaly,swap] [-json] [-n 10] [-recent]
//	              [-since 15m|SEQ] [-retry] [-retry-max 15s]
//
// The logs subcommand queries a daemon's durable telemetry journal —
// history that survives restarts — and with -follow splices it into
// the live tail, deduplicated by hub sequence number:
//
//	sedspec logs ADDR [-since 15m] [-until TIME] [-kinds anomaly]
//	             [-tenant T] [-device D] [-json] [-n N] [-follow]
//
// The control-plane subcommands drive a running sedspecd fleet daemon
// over its HTTP/JSON API (see cmd/sedspecd):
//
//	sedspec tenant [-addr A] create|delete|list [NAME]
//	sedspec install [-addr A] -tenant T -device D [-corpus C] [-mode M] [-budget N]
//	sedspec attach  [-addr A] -tenant T -device D [-workload W] [-cve ID] [-count N]
//	sedspec detach  [-addr A] -tenant T -id N
//	sedspec swap    [-addr A] -tenant T -device D [-enhance] [-generation N]
//	sedspec status  [-addr A] [-tenant T]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sedspec"
	"sedspec/internal/bench"
	"sedspec/internal/checker"
	"sedspec/internal/cmdutil"
	"sedspec/internal/core"
	"sedspec/internal/cvesim"
	"sedspec/internal/machine"
	"sedspec/internal/obs"
	"sedspec/internal/obs/span"
	"sedspec/internal/simclock"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "report" {
		if err := runReport(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "sedspec report:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "watch" {
		if err := runWatch(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "sedspec watch:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 {
		ctl := map[string]func([]string) error{
			"logs":    runLogs,
			"tenant":  runTenant,
			"install": runInstall,
			"attach":  runAttach,
			"detach":  runDetach,
			"swap":    runSwap,
			"status":  runStatus,
		}
		if run, ok := ctl[os.Args[1]]; ok {
			if err := run(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "sedspec "+os.Args[1]+":", err)
				os.Exit(1)
			}
			return
		}
	}

	var cfg runConfig
	flag.StringVar(&cfg.device, "device", "fdc", "device to build a specification for")
	flag.StringVar(&cfg.out, "out", "", "write the specification as JSON to this file")
	flag.StringVar(&cfg.specIn, "spec-in", "", "load a binary specification from this file instead of learning")
	flag.StringVar(&cfg.specOut, "spec-out", "", "write the specification in the binary codec to this file")
	flag.StringVar(&cfg.specStore, "spec-store", "", "learn through a versioned spec store at this directory (cache hit skips learning)")
	flag.StringVar(&cfg.dot, "dot", "", "write the ES-CFG as Graphviz to this file")
	flag.BoolVar(&cfg.attack, "attack", false, "replay the device's CVE proof(s) of concept")
	flag.BoolVar(&cfg.enhance, "enhance", false, "audit the device's rare legitimate command in enhancement mode and publish the enhanced spec to -spec-store")
	flag.StringVar(&cfg.mode, "mode", "protection", "checker working mode: protection or enhancement")
	metrics := flag.String("metrics", "", "periodically export checker metrics as JSON to this file")
	listen := flag.String("listen", "", "serve the introspection endpoints (/healthz /fleet /metrics /anomalies /coverage /buildinfo /debug/vars /debug/pprof) on this address")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -listen")
	budget := flag.Float64("overhead-budget", 0, "enforcement-overhead watchdog budget in ns per checked I/O (0 disables)")
	flag.StringVar(&cfg.traceDir, "trace-on-anomaly", "", "write each blocked PoC's flight-recorder timeline into this directory")
	flag.StringVar(&cfg.coverageDir, "coverage-dir", "", "write ES-CFG coverage profiles and per-PoC anomaly coverage as JSON into this directory")
	spans := flag.String("spans", "", "write the lifecycle span trace as Chrome trace_event JSON to this file")
	flag.Parse()

	if err := realMain(cfg, *metrics, cmdutil.ResolveListen(*listen, *pprofAddr), *budget, *spans); err != nil {
		fmt.Fprintln(os.Stderr, "sedspec:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	device      string
	out         string
	specIn      string
	specOut     string
	specStore   string
	dot         string
	attack      bool
	enhance     bool
	mode        string
	traceDir    string
	coverageDir string
}

// realMain brackets run with the observability plumbing so the final
// metrics/span exports happen on the error path and on SIGINT/SIGTERM
// too (os.Exit skips defers).
func realMain(cfg runConfig, metrics, listenAddr string, budget float64, spans string) error {
	if listenAddr != "" {
		if _, err := cmdutil.ServeIntrospection(listenAddr, budget); err != nil {
			return fmt.Errorf("listen: %w", err)
		}
	}
	fl := cmdutil.NewFlusher()
	defer fl.Flush()
	if metrics != "" {
		stop := obs.ExportEvery(metrics, time.Second, obs.Default())
		fl.Add(stop)
	}
	if spans != "" {
		fl.Add(func() error { return cmdutil.WriteSpans(spans, span.Default()) })
	}
	return run(cfg, fl)
}

// obtainSpec resolves the specification from one of three sources, in
// precedence order: a binary file (-spec-in), a versioned store
// (-spec-store, learning on miss), or a fresh learning run. When the
// spec came from a store, the store handle and the version's generation
// are returned too so the run can publish its coverage profile back.
func obtainSpec(cfg runConfig, target *bench.Target, att *machine.Attached) (*core.Spec, *sedspec.SpecStore, sedspec.SpecVersion, error) {
	device := cfg.device
	if cfg.specIn != "" {
		data, err := os.ReadFile(cfg.specIn)
		if err != nil {
			return nil, nil, sedspec.SpecVersion{}, err
		}
		spec, err := core.DecodeBinary(att.Dev().Program(), data)
		if err != nil {
			return nil, nil, sedspec.SpecVersion{}, fmt.Errorf("%s: %w", cfg.specIn, err)
		}
		fmt.Printf("loaded execution specification for %s from %s\n", device, cfg.specIn)
		fmt.Print(spec.String())
		return spec, nil, sedspec.SpecVersion{}, nil
	}
	if cfg.specStore != "" {
		st, err := sedspec.OpenStore(cfg.specStore)
		if err != nil {
			return nil, nil, sedspec.SpecVersion{}, err
		}
		spec, meta, hit, err := sedspec.LearnCached(st, att, "benign-train", target.Train)
		if err != nil {
			return nil, nil, sedspec.SpecVersion{}, err
		}
		if hit {
			fmt.Printf("store hit: %s generation %d (%s, created by %s)\n",
				device, meta.Generation, meta.Blob[:12], meta.CreatedBy)
		} else {
			fmt.Printf("store miss: learned %s and published generation %d (%s)\n",
				device, meta.Generation, meta.Blob[:12])
		}
		fmt.Print(spec.String())
		return spec, st, meta, nil
	}

	fmt.Printf("learning execution specification for %s ...\n", device)
	r, err := sedspec.LearnFull(att, target.Train)
	if err != nil {
		return nil, nil, sedspec.SpecVersion{}, err
	}
	fmt.Print(r.Spec.String())
	fmt.Print(r.Params.String())
	fmt.Printf("trace: %d packets collected (%d events; %d range-filtered, %d ring-filtered)\n",
		r.Trace.Packets, r.Trace.Events, r.Trace.FilteredRange, r.Trace.FilteredKernel)
	return r.Spec, nil, sedspec.SpecVersion{}, nil
}

func run(cfg runConfig, fl *cmdutil.Flusher) error {
	device, out, dot := cfg.device, cfg.out, cfg.dot
	target := bench.TargetByName(device, false)
	if target == nil {
		return fmt.Errorf("unknown device %q", device)
	}

	m := machine.New(machine.WithMemory(1 << 20))
	dev, opts := target.Build()
	att := m.Attach(dev, opts...)

	spec, st, meta, err := obtainSpec(cfg, target, att)
	if err != nil {
		return err
	}
	gen := meta.Generation

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := spec.Save(f); err != nil {
			return err
		}
		// Round-trip sanity: the saved spec must reload against the same
		// program.
		rf, err := os.Open(out)
		if err != nil {
			return err
		}
		defer rf.Close()
		if _, err := core.Load(dev.Program(), rf); err != nil {
			return fmt.Errorf("saved spec does not reload: %w", err)
		}
		fmt.Printf("specification written to %s\n", out)
	}
	if cfg.specOut != "" {
		data, err := spec.EncodeBinary()
		if err != nil {
			return err
		}
		// Round-trip sanity, as for -out.
		if _, err := core.DecodeBinary(dev.Program(), data); err != nil {
			return fmt.Errorf("encoded spec does not decode: %w", err)
		}
		if err := os.WriteFile(cfg.specOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("binary specification written to %s (%d bytes)\n", cfg.specOut, len(data))
	}
	if dot != "" {
		if err := os.WriteFile(dot, []byte(spec.Dot()), 0o644); err != nil {
			return err
		}
		fmt.Printf("ES-CFG written to %s\n", dot)
	}

	chkMode := checker.ModeProtection
	if cfg.mode == "enhancement" || cfg.enhance {
		chkMode = checker.ModeEnhancement
	}
	chk := sedspec.Protect(att, spec, checker.WithMode(chkMode))
	fmt.Printf("replaying benign workload under %s mode ... ", chkMode)
	if err := target.Train(sedspec.NewDriver(att)); err != nil {
		return fmt.Errorf("benign workload blocked: %w", err)
	}
	cst := chk.Stats()
	fmt.Printf("clean (%d rounds checked, %d anomalies)\n",
		cst.Rounds, cst.ParamAnomalies+cst.IndirectAnomalies+cst.CondAnomalies)

	if cfg.enhance {
		if err := runEnhance(target, att, chk, st, meta); err != nil {
			return err
		}
	}

	// Final coverage exports run through the flusher so an interrupted
	// run still leaves its profile on disk — and, when the spec came from
	// a store, publishes the profile back under its generation for
	// `sedspec report` to overlay.
	fl.Add(func() error {
		p := chk.CoverageProfile()
		if p == nil {
			return nil
		}
		if gen != 0 {
			p.Generation = gen
		}
		if st != nil {
			if err := st.PutCoverage(p); err != nil {
				return err
			}
		}
		if cfg.coverageDir != "" {
			name := fmt.Sprintf("%s-g%d.coverage.json", device, p.Generation)
			return cmdutil.WriteJSON(filepath.Join(cfg.coverageDir, name), p)
		}
		return nil
	})

	if cfg.attack {
		for _, poc := range cvesim.All() {
			if poc.Device != device {
				continue
			}
			outc, err := poc.RunProtected()
			if err != nil {
				return err
			}
			verdict := "MISSED (documented false negative)"
			if outc.Detected {
				verdict = fmt.Sprintf("BLOCKED by %s", outc.Anomaly.Strategy)
			}
			fmt.Printf("%s: %s\n", poc.CVE, verdict)
			if outc.Detected && outc.Anomaly != nil {
				fmt.Printf("  %s\n", outc.Anomaly.Detail)
				if cfg.traceDir != "" && outc.Anomaly.Ctx != nil {
					if err := writeTrace(cfg.traceDir, poc.CVE, outc.Anomaly.Ctx); err != nil {
						return err
					}
				}
				if cfg.coverageDir != "" {
					if err := writeAnomalyCoverage(cfg.coverageDir, &outc); err != nil {
						return err
					}
				}
			}
		}
	}
	return fl.Flush()
}

// runEnhance demonstrates the enhancement pipeline end to end: drive
// the device's rare-but-legitimate command under the already-running
// enhancement-mode checker (which warns and audits it rather than
// blocking), then replay the audit into a fresh learn and publish the
// enhanced spec as the next store generation — the two generations
// `sedspec report` is made to diff.
func runEnhance(target *bench.Target, att *machine.Attached, chk *checker.Checker, st *sedspec.SpecStore, parent sedspec.SpecVersion) error {
	if st == nil {
		return fmt.Errorf("-enhance requires -spec-store (the enhanced spec is published as a new generation)")
	}
	s := target.NewSession(sedspec.NewDriver(att), simclock.NewRand(1))
	if s.Prepare != nil {
		if err := s.Prepare(); err != nil {
			return fmt.Errorf("device bring-up: %w", err)
		}
	}
	if err := s.Rare(); err != nil {
		return fmt.Errorf("rare command blocked (enhancement mode should warn): %w", err)
	}
	audit := chk.Audit()
	if len(audit) == 0 {
		return fmt.Errorf("rare command raised no warning: training already covers it, nothing to enhance")
	}
	fmt.Printf("audited %d benign-but-untrained warning(s)\n", len(audit))

	// The enhancement replay needs a fresh instance of the same device
	// program: training composes the original corpus with the audit.
	m2 := machine.New(machine.WithMemory(1 << 20))
	dev2, opts2 := target.Build()
	att2 := m2.Attach(dev2, opts2...)
	_, meta2, err := sedspec.EnhanceToStore(st, att2, parent, target.Train, audit)
	if err != nil {
		return err
	}
	fmt.Printf("enhanced spec published: generation %d (parent %d, created by %s)\n",
		meta2.Generation, meta2.Parent, meta2.CreatedBy)
	fmt.Printf("diff them: sedspec report -spec-store %s -device %s -from %d -to %d\n",
		st.Dir(), target.Name, parent.Generation, meta2.Generation)
	return nil
}

// writeAnomalyCoverage relates a blocked PoC's anomaly to its training
// corpus (DIR/<CVE>.anomaly.json) and dumps the protected run's coverage
// profile (DIR/<CVE>.coverage.json). For a true positive the anomaly
// record's edge_trained field is false: training never exercised the
// transition the exploit needed.
func writeAnomalyCoverage(dir string, outc *cvesim.Outcome) error {
	cov := checker.TrainingCoverage(outc.Spec, outc.Anomaly)
	rec := struct {
		CVE      string                  `json:"cve"`
		Strategy string                  `json:"strategy"`
		Detail   string                  `json:"detail"`
		Coverage checker.AnomalyCoverage `json:"coverage"`
	}{outc.CVE, outc.Anomaly.Strategy.String(), outc.Anomaly.Detail, cov}
	if err := cmdutil.WriteJSON(filepath.Join(dir, outc.CVE+".anomaly.json"), rec); err != nil {
		return err
	}
	if p := outc.Checker.CoverageProfile(); p != nil {
		if err := cmdutil.WriteJSON(filepath.Join(dir, outc.CVE+".coverage.json"), p); err != nil {
			return err
		}
	}
	fmt.Printf("  anomaly coverage: block_in_spec=%v edge_kind=%s edge_trained=%v\n",
		cov.BlockInSpec, cov.EdgeKind, cov.EdgeTrained)
	return nil
}

// runReport implements `sedspec report`: load two generations of a
// device's spec from the store, build each one's coverage profile
// (structural baseline from the sealed spec, overlaid with the runtime
// counts published by enforcement runs, when present), and print the
// drift between them — blocks/edges/commands the newer generation
// legalized or dropped, plus what enforcement never exercised.
func runReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	storeDir := fs.String("spec-store", "", "spec store directory (required)")
	device := fs.String("device", "fdc", "device whose generations to diff")
	from := fs.Uint64("from", 0, "older generation (required)")
	to := fs.Uint64("to", 0, "newer generation (required)")
	asJSON := fs.Bool("json", false, "emit the drift report as JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" || *from == 0 || *to == 0 {
		return fmt.Errorf("usage: sedspec report -spec-store DIR -device DEV -from GEN -to GEN [-json]")
	}
	target := bench.TargetByName(*device, false)
	if target == nil {
		return fmt.Errorf("unknown device %q", *device)
	}
	st, err := sedspec.OpenStore(*storeDir)
	if err != nil {
		return err
	}
	dev, _ := target.Build()
	prog := dev.Program()

	profileOf := func(gen uint64) (*sedspec.CoverageProfile, error) {
		var meta sedspec.SpecVersion
		found := false
		for _, v := range st.Versions(prog.Name) {
			if v.Generation == gen {
				meta, found = v, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%s generation %d not in store", prog.Name, gen)
		}
		spec, err := st.Load(prog, meta)
		if err != nil {
			return nil, err
		}
		// Structural baseline (training counts, zero runtime hits) from
		// the sealed spec; a published runtime profile replaces it.
		p := spec.Seal().CoverageProfile(gen, nil)
		if stored, ok, err := st.LoadCoverage(prog.Name, gen); err != nil {
			return nil, err
		} else if ok {
			if stored.Lowering == nil {
				// Profiles published before lowering stats existed: the
				// stream is a pure function of the sealed spec, so the
				// structural baseline's stats apply verbatim.
				stored.Lowering = p.Lowering
			}
			p = stored
		}
		return p, nil
	}

	fromProf, err := profileOf(*from)
	if err != nil {
		return err
	}
	toProf, err := profileOf(*to)
	if err != nil {
		return err
	}
	drift := sedspec.DiffCoverage(fromProf, toProf)
	if *asJSON {
		return drift.WriteJSON(os.Stdout)
	}
	return drift.WriteTable(os.Stdout)
}

// writeTrace dumps a blocked PoC's forensic timeline as DIR/<CVE>.trace.
func writeTrace(dir, cve string, ctx *obs.AnomalyContext) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, cve+".trace")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ctx.WriteTimeline(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("  timeline written to %s\n", path)
	return nil
}
