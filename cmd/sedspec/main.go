// Command sedspec is the SEDSpec workflow driver: learn an execution
// specification for an emulated device, inspect it, save and reload it,
// and demonstrate runtime protection against the device's CVE exploit.
//
// Usage:
//
//	sedspec -device fdc|ehci|pcnet|sdhci|scsi [-out spec.json]
//	        [-spec-in spec.bin] [-spec-out spec.bin] [-spec-store DIR]
//	        [-dot cfg.dot] [-attack] [-mode protection|enhancement]
//	        [-metrics metrics.json] [-trace-on-anomaly DIR] [-pprof ADDR]
//
// Without flags it learns the specification, prints its summary and the
// selected device-state parameters, and replays the benign workload under
// protection. With -attack it additionally replays the device's CVE
// proof-of-concept and reports the verdict.
//
// Spec lifecycle: -spec-out writes the learned specification in the
// compact binary codec, -spec-in loads one instead of learning (the two
// compose: load, then re-export), and -spec-store learns through a
// versioned spec store — a second run with the same device and training
// corpus is a cache hit that skips learning entirely.
//
// Observability: -metrics periodically exports the checker metrics
// registry as JSON (final export on exit), -trace-on-anomaly writes each
// blocked PoC's flight-recorder timeline as DIR/<CVE>.trace, and -pprof
// serves net/http/pprof plus /debug/vars on the given address.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sedspec"
	"sedspec/internal/bench"
	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/cvesim"
	"sedspec/internal/machine"
	"sedspec/internal/obs"
)

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.device, "device", "fdc", "device to build a specification for")
	flag.StringVar(&cfg.out, "out", "", "write the specification as JSON to this file")
	flag.StringVar(&cfg.specIn, "spec-in", "", "load a binary specification from this file instead of learning")
	flag.StringVar(&cfg.specOut, "spec-out", "", "write the specification in the binary codec to this file")
	flag.StringVar(&cfg.specStore, "spec-store", "", "learn through a versioned spec store at this directory (cache hit skips learning)")
	flag.StringVar(&cfg.dot, "dot", "", "write the ES-CFG as Graphviz to this file")
	flag.BoolVar(&cfg.attack, "attack", false, "replay the device's CVE proof(s) of concept")
	flag.StringVar(&cfg.mode, "mode", "protection", "checker working mode: protection or enhancement")
	metrics := flag.String("metrics", "", "periodically export checker metrics as JSON to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /debug/vars on this address")
	flag.StringVar(&cfg.traceDir, "trace-on-anomaly", "", "write each blocked PoC's flight-recorder timeline into this directory")
	flag.Parse()

	if err := realMain(cfg, *metrics, *pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "sedspec:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	device    string
	out       string
	specIn    string
	specOut   string
	specStore string
	dot       string
	attack    bool
	mode      string
	traceDir  string
}

// realMain brackets run with the observability plumbing so the final
// metrics export happens on the error path too (os.Exit skips defers).
func realMain(cfg runConfig, metrics, pprofAddr string) error {
	if pprofAddr != "" {
		addr, err := obs.ServeDebug(pprofAddr, obs.Default())
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		fmt.Printf("debug server on http://%s/debug/pprof (metrics on /debug/vars)\n", addr)
	}
	if metrics != "" {
		stop := obs.ExportEvery(metrics, time.Second, obs.Default())
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "sedspec: metrics export:", err)
			}
		}()
	}
	return run(cfg)
}

// obtainSpec resolves the specification from one of three sources, in
// precedence order: a binary file (-spec-in), a versioned store
// (-spec-store, learning on miss), or a fresh learning run.
func obtainSpec(cfg runConfig, target *bench.Target, att *machine.Attached) (*core.Spec, error) {
	device := cfg.device
	if cfg.specIn != "" {
		data, err := os.ReadFile(cfg.specIn)
		if err != nil {
			return nil, err
		}
		spec, err := core.DecodeBinary(att.Dev().Program(), data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.specIn, err)
		}
		fmt.Printf("loaded execution specification for %s from %s\n", device, cfg.specIn)
		fmt.Print(spec.String())
		return spec, nil
	}
	if cfg.specStore != "" {
		st, err := sedspec.OpenStore(cfg.specStore)
		if err != nil {
			return nil, err
		}
		spec, meta, hit, err := sedspec.LearnCached(st, att, "benign-train", target.Train)
		if err != nil {
			return nil, err
		}
		if hit {
			fmt.Printf("store hit: %s generation %d (%s, created by %s)\n",
				device, meta.Generation, meta.Blob[:12], meta.CreatedBy)
		} else {
			fmt.Printf("store miss: learned %s and published generation %d (%s)\n",
				device, meta.Generation, meta.Blob[:12])
		}
		fmt.Print(spec.String())
		return spec, nil
	}

	fmt.Printf("learning execution specification for %s ...\n", device)
	r, err := sedspec.LearnFull(att, target.Train)
	if err != nil {
		return nil, err
	}
	fmt.Print(r.Spec.String())
	fmt.Print(r.Params.String())
	fmt.Printf("trace: %d packets collected (%d events; %d range-filtered, %d ring-filtered)\n",
		r.Trace.Packets, r.Trace.Events, r.Trace.FilteredRange, r.Trace.FilteredKernel)
	return r.Spec, nil
}

func run(cfg runConfig) error {
	device, out, dot := cfg.device, cfg.out, cfg.dot
	target := bench.TargetByName(device, false)
	if target == nil {
		return fmt.Errorf("unknown device %q", device)
	}

	m := machine.New(machine.WithMemory(1 << 20))
	dev, opts := target.Build()
	att := m.Attach(dev, opts...)

	spec, err := obtainSpec(cfg, target, att)
	if err != nil {
		return err
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := spec.Save(f); err != nil {
			return err
		}
		// Round-trip sanity: the saved spec must reload against the same
		// program.
		rf, err := os.Open(out)
		if err != nil {
			return err
		}
		defer rf.Close()
		if _, err := core.Load(dev.Program(), rf); err != nil {
			return fmt.Errorf("saved spec does not reload: %w", err)
		}
		fmt.Printf("specification written to %s\n", out)
	}
	if cfg.specOut != "" {
		data, err := spec.EncodeBinary()
		if err != nil {
			return err
		}
		// Round-trip sanity, as for -out.
		if _, err := core.DecodeBinary(dev.Program(), data); err != nil {
			return fmt.Errorf("encoded spec does not decode: %w", err)
		}
		if err := os.WriteFile(cfg.specOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("binary specification written to %s (%d bytes)\n", cfg.specOut, len(data))
	}
	if dot != "" {
		if err := os.WriteFile(dot, []byte(spec.Dot()), 0o644); err != nil {
			return err
		}
		fmt.Printf("ES-CFG written to %s\n", dot)
	}

	chkMode := checker.ModeProtection
	if cfg.mode == "enhancement" {
		chkMode = checker.ModeEnhancement
	}
	chk := sedspec.Protect(att, spec, checker.WithMode(chkMode))
	fmt.Printf("replaying benign workload under %s mode ... ", chkMode)
	if err := target.Train(sedspec.NewDriver(att)); err != nil {
		return fmt.Errorf("benign workload blocked: %w", err)
	}
	st := chk.Stats()
	fmt.Printf("clean (%d rounds checked, %d anomalies)\n",
		st.Rounds, st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies)

	if cfg.attack {
		for _, poc := range cvesim.All() {
			if poc.Device != device {
				continue
			}
			outc, err := poc.RunProtected()
			if err != nil {
				return err
			}
			verdict := "MISSED (documented false negative)"
			if outc.Detected {
				verdict = fmt.Sprintf("BLOCKED by %s", outc.Anomaly.Strategy)
			}
			fmt.Printf("%s: %s\n", poc.CVE, verdict)
			if outc.Detected && outc.Anomaly != nil {
				fmt.Printf("  %s\n", outc.Anomaly.Detail)
				if cfg.traceDir != "" && outc.Anomaly.Ctx != nil {
					if err := writeTrace(cfg.traceDir, poc.CVE, outc.Anomaly.Ctx); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// writeTrace dumps a blocked PoC's forensic timeline as DIR/<CVE>.trace.
func writeTrace(dir, cve string, ctx *obs.AnomalyContext) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, cve+".trace")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ctx.WriteTimeline(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("  timeline written to %s\n", path)
	return nil
}
