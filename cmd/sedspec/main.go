// Command sedspec is the SEDSpec workflow driver: learn an execution
// specification for an emulated device, inspect it, save and reload it,
// and demonstrate runtime protection against the device's CVE exploit.
//
// Usage:
//
//	sedspec -device fdc|ehci|pcnet|sdhci|scsi [-out spec.json]
//	        [-dot cfg.dot] [-attack] [-mode protection|enhancement]
//	        [-metrics metrics.json] [-trace-on-anomaly DIR] [-pprof ADDR]
//
// Without flags it learns the specification, prints its summary and the
// selected device-state parameters, and replays the benign workload under
// protection. With -attack it additionally replays the device's CVE
// proof-of-concept and reports the verdict.
//
// Observability: -metrics periodically exports the checker metrics
// registry as JSON (final export on exit), -trace-on-anomaly writes each
// blocked PoC's flight-recorder timeline as DIR/<CVE>.trace, and -pprof
// serves net/http/pprof plus /debug/vars on the given address.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sedspec"
	"sedspec/internal/bench"
	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/cvesim"
	"sedspec/internal/machine"
	"sedspec/internal/obs"
)

func main() {
	device := flag.String("device", "fdc", "device to build a specification for")
	out := flag.String("out", "", "write the specification as JSON to this file")
	dot := flag.String("dot", "", "write the ES-CFG as Graphviz to this file")
	attack := flag.Bool("attack", false, "replay the device's CVE proof(s) of concept")
	mode := flag.String("mode", "protection", "checker working mode: protection or enhancement")
	metrics := flag.String("metrics", "", "periodically export checker metrics as JSON to this file")
	traceDir := flag.String("trace-on-anomaly", "", "write each blocked PoC's flight-recorder timeline into this directory")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /debug/vars on this address")
	flag.Parse()

	if err := realMain(*device, *out, *dot, *attack, *mode, *metrics, *traceDir, *pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "sedspec:", err)
		os.Exit(1)
	}
}

// realMain brackets run with the observability plumbing so the final
// metrics export happens on the error path too (os.Exit skips defers).
func realMain(device, out, dot string, attack bool, mode, metrics, traceDir, pprofAddr string) error {
	if pprofAddr != "" {
		addr, err := obs.ServeDebug(pprofAddr, obs.Default())
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		fmt.Printf("debug server on http://%s/debug/pprof (metrics on /debug/vars)\n", addr)
	}
	if metrics != "" {
		stop := obs.ExportEvery(metrics, time.Second, obs.Default())
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "sedspec: metrics export:", err)
			}
		}()
	}
	return run(device, out, dot, attack, mode, traceDir)
}

func run(device, out, dot string, attack bool, mode, traceDir string) error {
	target := bench.TargetByName(device, false)
	if target == nil {
		return fmt.Errorf("unknown device %q", device)
	}

	m := machine.New(machine.WithMemory(1 << 20))
	dev, opts := target.Build()
	att := m.Attach(dev, opts...)

	fmt.Printf("learning execution specification for %s ...\n", device)
	r, err := sedspec.LearnFull(att, target.Train)
	if err != nil {
		return err
	}
	fmt.Print(r.Spec.String())
	fmt.Print(r.Params.String())
	fmt.Printf("trace: %d packets collected (%d events; %d range-filtered, %d ring-filtered)\n",
		r.Trace.Packets, r.Trace.Events, r.Trace.FilteredRange, r.Trace.FilteredKernel)

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.Spec.Save(f); err != nil {
			return err
		}
		// Round-trip sanity: the saved spec must reload against the same
		// program.
		rf, err := os.Open(out)
		if err != nil {
			return err
		}
		defer rf.Close()
		if _, err := core.Load(dev.Program(), rf); err != nil {
			return fmt.Errorf("saved spec does not reload: %w", err)
		}
		fmt.Printf("specification written to %s\n", out)
	}
	if dot != "" {
		if err := os.WriteFile(dot, []byte(r.Spec.Dot()), 0o644); err != nil {
			return err
		}
		fmt.Printf("ES-CFG written to %s\n", dot)
	}

	chkMode := checker.ModeProtection
	if mode == "enhancement" {
		chkMode = checker.ModeEnhancement
	}
	chk := sedspec.Protect(att, r.Spec, checker.WithMode(chkMode))
	fmt.Printf("replaying benign workload under %s mode ... ", chkMode)
	if err := target.Train(sedspec.NewDriver(att)); err != nil {
		return fmt.Errorf("benign workload blocked: %w", err)
	}
	st := chk.Stats()
	fmt.Printf("clean (%d rounds checked, %d anomalies)\n",
		st.Rounds, st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies)

	if attack {
		for _, poc := range cvesim.All() {
			if poc.Device != device {
				continue
			}
			outc, err := poc.RunProtected()
			if err != nil {
				return err
			}
			verdict := "MISSED (documented false negative)"
			if outc.Detected {
				verdict = fmt.Sprintf("BLOCKED by %s", outc.Anomaly.Strategy)
			}
			fmt.Printf("%s: %s\n", poc.CVE, verdict)
			if outc.Detected && outc.Anomaly != nil {
				fmt.Printf("  %s\n", outc.Anomaly.Detail)
				if traceDir != "" && outc.Anomaly.Ctx != nil {
					if err := writeTrace(traceDir, poc.CVE, outc.Anomaly.Ctx); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// writeTrace dumps a blocked PoC's forensic timeline as DIR/<CVE>.trace.
func writeTrace(dir, cve string, ctx *obs.AnomalyContext) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, cve+".trace")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ctx.WriteTimeline(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("  timeline written to %s\n", path)
	return nil
}
