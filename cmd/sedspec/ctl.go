package main

// Control-plane client subcommands: thin HTTP/JSON wrappers over a
// running sedspecd. Each talks to -addr and prints the daemon's JSON
// response verbatim (it is already indented), so output composes with
// jq the same way curl does.
//
//	sedspec tenant [-addr A] create|delete|list [NAME]
//	sedspec install [-addr A] -tenant T -device D [-corpus C] [-mode M] [-budget N]
//	sedspec attach  [-addr A] -tenant T -device D [-workload W] [-cve ID] [-count N] [-ops N] [-seed N]
//	sedspec detach  [-addr A] -tenant T -id N
//	sedspec swap    [-addr A] -tenant T -device D [-enhance] [-generation N]
//	sedspec status  [-addr A] [-tenant T]

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

const defaultDaemonAddr = "127.0.0.1:6060"

// ctlBase normalises -addr into a base URL.
func ctlBase(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimRight(addr, "/")
	}
	return "http://" + strings.TrimRight(addr, "/")
}

// ctlDo issues one control-plane request and streams the JSON response
// to stdout. Error bodies ({"error": ...}) become command errors.
func ctlDo(method, url string, body any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	_, err = os.Stdout.Write(data)
	return err
}

func runTenant(args []string) error {
	fs := flag.NewFlagSet("tenant", flag.ContinueOnError)
	addr := fs.String("addr", defaultDaemonAddr, "sedspecd address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := ctlBase(*addr)
	switch verb := fs.Arg(0); verb {
	case "create":
		name := fs.Arg(1)
		if name == "" {
			return fmt.Errorf("usage: sedspec tenant [-addr A] create NAME")
		}
		return ctlDo("POST", base+"/tenants", struct {
			Name string `json:"name"`
		}{name})
	case "delete":
		name := fs.Arg(1)
		if name == "" {
			return fmt.Errorf("usage: sedspec tenant [-addr A] delete NAME")
		}
		return ctlDo("DELETE", base+"/tenants/"+name, nil)
	case "list", "":
		return ctlDo("GET", base+"/tenants", nil)
	default:
		return fmt.Errorf("unknown verb %q (want create, delete, or list)", verb)
	}
}

func runInstall(args []string) error {
	fs := flag.NewFlagSet("install", flag.ContinueOnError)
	addr := fs.String("addr", defaultDaemonAddr, "sedspecd address")
	tenant := fs.String("tenant", "", "tenant name (required)")
	device := fs.String("device", "", "device name (required)")
	corpus := fs.String("corpus", "", `training corpus: "benign" (default) or "cve:<CVE-ID>"`)
	mode := fs.String("mode", "", "enforcement mode: protection (default) or enhancement")
	budget := fs.Uint64("budget", 0, "per-check step budget (0 = engine default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenant == "" || *device == "" {
		return fmt.Errorf("usage: sedspec install [-addr A] -tenant T -device D [-corpus C] [-mode M] [-budget N]")
	}
	return ctlDo("POST", ctlBase(*addr)+"/tenants/"+*tenant+"/specs", struct {
		Device string `json:"device"`
		Corpus string `json:"corpus,omitempty"`
		Mode   string `json:"mode,omitempty"`
		Budget uint64 `json:"budget,omitempty"`
	}{*device, *corpus, *mode, *budget})
}

func runAttach(args []string) error {
	fs := flag.NewFlagSet("attach", flag.ContinueOnError)
	addr := fs.String("addr", defaultDaemonAddr, "sedspecd address")
	tenant := fs.String("tenant", "", "tenant name (required)")
	device := fs.String("device", "", "device name (required)")
	workload := fs.String("workload", "", "benign (default), mixed, poc, or idle")
	cve := fs.String("cve", "", "CVE ID for -workload poc (default: the engine's corpus PoC)")
	count := fs.Int("count", 0, "number of sessions to attach (default 1)")
	ops := fs.Uint64("ops", 0, "op bound for benign/mixed loops (0 = until detach)")
	seed := fs.Uint64("seed", 0, "workload RNG seed (session i uses seed+i)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenant == "" || *device == "" {
		return fmt.Errorf("usage: sedspec attach [-addr A] -tenant T -device D [-workload W] [-cve ID] [-count N] [-ops N] [-seed N]")
	}
	return ctlDo("POST", ctlBase(*addr)+"/tenants/"+*tenant+"/sessions", struct {
		Device   string `json:"device"`
		Workload string `json:"workload,omitempty"`
		CVE      string `json:"cve,omitempty"`
		Count    int    `json:"count,omitempty"`
		Ops      uint64 `json:"ops,omitempty"`
		Seed     uint64 `json:"seed,omitempty"`
	}{*device, *workload, *cve, *count, *ops, *seed})
}

func runDetach(args []string) error {
	fs := flag.NewFlagSet("detach", flag.ContinueOnError)
	addr := fs.String("addr", defaultDaemonAddr, "sedspecd address")
	tenant := fs.String("tenant", "", "tenant name (required)")
	id := fs.Int("id", -1, "session ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenant == "" || *id < 0 {
		return fmt.Errorf("usage: sedspec detach [-addr A] -tenant T -id N")
	}
	return ctlDo("DELETE", fmt.Sprintf("%s/tenants/%s/sessions/%d", ctlBase(*addr), *tenant, *id), nil)
}

func runSwap(args []string) error {
	fs := flag.NewFlagSet("swap", flag.ContinueOnError)
	addr := fs.String("addr", defaultDaemonAddr, "sedspecd address")
	tenant := fs.String("tenant", "", "tenant name (required)")
	device := fs.String("device", "", "device name (required)")
	enhance := fs.Bool("enhance", false, "enhance from the engine's audit trail, publish, and swap")
	generation := fs.Uint64("generation", 0, "swap to this stored spec generation instead")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenant == "" || *device == "" {
		return fmt.Errorf("usage: sedspec swap [-addr A] -tenant T -device D [-enhance] [-generation N]")
	}
	return ctlDo("POST", ctlBase(*addr)+"/tenants/"+*tenant+"/swap", struct {
		Device     string `json:"device"`
		Enhance    bool   `json:"enhance,omitempty"`
		Generation uint64 `json:"generation,omitempty"`
	}{*device, *enhance, *generation})
}

func runStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	addr := fs.String("addr", defaultDaemonAddr, "sedspecd address")
	tenant := fs.String("tenant", "", "restrict to one tenant")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := ctlBase(*addr)
	if *tenant != "" {
		return ctlDo("GET", base+"/tenants/"+*tenant, nil)
	}
	return ctlDo("GET", base+"/status", nil)
}
