package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"sedspec/internal/obs/stream"
)

// journalServer scripts both halves of the splice: journalFn serves
// /journal (nil → 404, a server without persistence), followFn the
// /anomalies follow stream, recentFn the recent fetch. The last
// /journal query is captured for parameter assertions.
type journalServer struct {
	*httptest.Server
	mu       sync.Mutex
	journalQ url.Values
}

func newJournalServer(t *testing.T, journalFn func(emit func(...uint64)), followFn, recentFn func(call int, emit func(...uint64))) *journalServer {
	t.Helper()
	js := &journalServer{}
	var mu sync.Mutex
	followN, recentN := 0, 0
	js.Server = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		emit := func(seqs ...uint64) {
			for _, s := range seqs {
				_ = enc.Encode(stream.Event{Seq: s, Kind: stream.KindAnomaly, Tenant: "prod", Device: "fdc"})
			}
		}
		switch r.URL.Path {
		case "/journal":
			if journalFn == nil {
				http.NotFound(w, r)
				return
			}
			js.mu.Lock()
			js.journalQ = r.URL.Query()
			js.mu.Unlock()
			journalFn(emit)
		case "/anomalies":
			follow := r.URL.Query().Get("follow") == "1"
			mu.Lock()
			var call int
			if follow {
				followN++
				call = followN
			} else {
				recentN++
				call = recentN
			}
			mu.Unlock()
			if follow {
				if followFn == nil {
					t.Error("unexpected follow request")
					return
				}
				followFn(call, emit)
			} else {
				if recentFn == nil {
					t.Error("unexpected recent request")
					return
				}
				recentFn(call, emit)
			}
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(js.Server.Close)
	return js
}

func (js *journalServer) lastJournalQuery() url.Values {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.journalQ
}

// TestWatchSinceSplicesJournal pins the -since contract: durable
// history prints first, and the live tail's overlap with it is
// deduplicated by hub sequence number.
func TestWatchSinceSplicesJournal(t *testing.T) {
	ts := newJournalServer(t,
		func(emit func(...uint64)) { emit(1, 2, 3, 4) },
		func(_ int, emit func(...uint64)) { emit(3, 4, 5, 6) }, // overlaps 3,4
		nil,
	)
	out, err := captureStdout(t, func() error {
		return runWatch([]string{"-json", "-n", "6", "-since", "15m", ts.URL})
	})
	if err != nil {
		t.Fatalf("runWatch: %v", err)
	}
	wantSeqs(t, out, 1, 2, 3, 4, 5, 6)
	if got := ts.lastJournalQuery().Get("since"); got != "15m" {
		t.Errorf("journal since param %q, want 15m", got)
	}
}

// TestWatchSinceSeq pins the sequence-cursor form: a bare integer maps
// to min_seq, not a time bound.
func TestWatchSinceSeq(t *testing.T) {
	ts := newJournalServer(t,
		func(emit func(...uint64)) { emit(3, 4) },
		func(_ int, emit func(...uint64)) { emit(5) },
		nil,
	)
	out, err := captureStdout(t, func() error {
		return runWatch([]string{"-json", "-n", "3", "-since", "3", ts.URL})
	})
	if err != nil {
		t.Fatalf("runWatch: %v", err)
	}
	wantSeqs(t, out, 3, 4, 5)
	q := ts.lastJournalQuery()
	if q.Get("min_seq") != "3" || q.Get("since") != "" {
		t.Errorf("journal query %v, want min_seq=3 and no since", q)
	}
}

// TestWatchSinceFallsBackWithoutJournal: a server running without
// persistence 404s /journal; -since degrades to the in-memory recent
// buffer instead of failing.
func TestWatchSinceFallsBackWithoutJournal(t *testing.T) {
	ts := newJournalServer(t,
		nil, // no /journal
		func(_ int, emit func(...uint64)) { emit(3) },
		func(_ int, emit func(...uint64)) { emit(1, 2) },
	)
	out, err := captureStdout(t, func() error {
		return runWatch([]string{"-json", "-n", "3", "-since", "15m", ts.URL})
	})
	if err != nil {
		t.Fatalf("runWatch: %v", err)
	}
	wantSeqs(t, out, 1, 2, 3)
}

// TestWatchSinceRejectsGarbage pins the -since grammar error.
func TestWatchSinceRejectsGarbage(t *testing.T) {
	if err := runWatch([]string{"-since", "yesterday", "127.0.0.1:1"}); err == nil ||
		!strings.Contains(err.Error(), "-since") {
		t.Fatalf("bad -since accepted: %v", err)
	}
}

// TestLogsOneShot pins `sedspec logs` without -follow: one journal
// query carrying every filter, no stream request afterwards.
func TestLogsOneShot(t *testing.T) {
	ts := newJournalServer(t,
		func(emit func(...uint64)) { emit(7, 8, 9) },
		nil, nil,
	)
	out, err := captureStdout(t, func() error {
		return runLogs([]string{"-json", "-since", "1h", "-kinds", "anomaly", "-tenant", "prod", "-device", "fdc", ts.URL})
	})
	if err != nil {
		t.Fatalf("runLogs: %v", err)
	}
	wantSeqs(t, out, 7, 8, 9)
	q := ts.lastJournalQuery()
	for param, want := range map[string]string{
		"since": "1h", "kinds": "anomaly", "tenant": "prod", "device": "fdc", "limit": "0",
	} {
		if got := q.Get(param); got != want {
			t.Errorf("journal %s param %q, want %q", param, got, want)
		}
	}
}

// TestLogsFollowSplices pins -follow: history then the live tail,
// exactly once per event across the overlap.
func TestLogsFollowSplices(t *testing.T) {
	ts := newJournalServer(t,
		func(emit func(...uint64)) { emit(1, 2, 3) },
		func(_ int, emit func(...uint64)) { emit(2, 3, 4, 5) },
		nil,
	)
	out, err := captureStdout(t, func() error {
		return runLogs([]string{"-json", "-n", "5", "-follow", ts.URL})
	})
	if err != nil {
		t.Fatalf("runLogs: %v", err)
	}
	wantSeqs(t, out, 1, 2, 3, 4, 5)
}

// TestLogsTenantFilterAppliesToLiveTail: the live stream has no
// server-side tenant filter, so the client must drop non-matching
// events in the -follow half too.
func TestLogsTenantFilterAppliesToLiveTail(t *testing.T) {
	// Live tail mixes tenants; the journal half is server-filtered.
	mixed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		switch r.URL.Path {
		case "/journal":
			_ = enc.Encode(stream.Event{Seq: 1, Kind: stream.KindAnomaly, Tenant: "prod", Device: "fdc"})
		case "/anomalies":
			_ = enc.Encode(stream.Event{Seq: 2, Kind: stream.KindAnomaly, Tenant: "edge", Device: "fdc"})
			_ = enc.Encode(stream.Event{Seq: 3, Kind: stream.KindAnomaly, Tenant: "prod", Device: "fdc"})
		default:
			http.NotFound(w, r)
		}
	}))
	defer mixed.Close()
	out, err := captureStdout(t, func() error {
		return runLogs([]string{"-json", "-n", "2", "-tenant", "prod", "-follow", mixed.URL})
	})
	if err != nil {
		t.Fatalf("runLogs: %v", err)
	}
	wantSeqs(t, out, 1, 3)
}

// TestLogsNoJournal pins the error when the daemon runs with -journal
// off: logs cannot serve history that was never persisted.
func TestLogsNoJournal(t *testing.T) {
	ts := newJournalServer(t, nil, nil, nil)
	if err := runLogs([]string{ts.URL}); err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("missing journal not surfaced: %v", err)
	}
}
