package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"sedspec/internal/obs/stream"
)

// watchInitialBackoff is the first reconnect delay; it doubles per
// failed attempt up to -retry-max.
const watchInitialBackoff = 500 * time.Millisecond

// runWatch implements `sedspec watch ADDR`: attach to a running
// process's introspection server (its -listen address), subscribe to
// the telemetry stream, and pretty-print events as they arrive. This
// is the resident-process/client split the daemon work needs: the
// enforcing process owns the hub, the watcher is just an NDJSON
// consumer.
//
// With -retry (the default) a dropped stream reconnects with capped
// exponential backoff. Each reconnect first replays the server's
// retained recent events, deduplicated by sequence number, so events
// published while the watcher was down are not silently lost; a recent
// buffer whose newest sequence is below the last one seen means the
// server restarted, and the dedup cursor resets so the new process's
// stream prints from its beginning.
func runWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	kinds := fs.String("kinds", "", "comma-separated event kinds to tail (anomaly,audit,swap,attach,detach,spec,health,drop; default: all but health)")
	asJSON := fs.Bool("json", false, "print raw NDJSON instead of the pretty form")
	n := fs.Int("n", 0, "exit after N events (0: until interrupted)")
	recent := fs.Bool("recent", false, "print the server's retained recent events and exit instead of following")
	since := fs.String("since", "", "splice durable history before the live tail: a duration (15m) or a hub sequence number, served from /journal")
	retry := fs.Bool("retry", true, "reconnect with capped exponential backoff when the stream drops")
	retryMax := fs.Duration("retry-max", 15*time.Second, "backoff cap between reconnect attempts")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: sedspec watch [flags] ADDR")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	addr := fs.Arg(0)
	if addr == "" {
		fs.Usage()
		return fmt.Errorf("ADDR required (the target process's -listen address)")
	}
	if *kinds != "" {
		if _, err := stream.ParseKinds(*kinds); err != nil {
			return err
		}
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	w := &watcher{
		base:     strings.TrimRight(addr, "/"),
		kinds:    *kinds,
		asJSON:   *asJSON,
		limit:    *n,
		retry:    *retry,
		retryMax: *retryMax,
	}
	if w.retryMax <= 0 {
		w.retryMax = watchInitialBackoff
	}
	if *since != "" {
		// History first, from the durable journal; printed events move the
		// dedup cursor, so the live tail (or the recent replay) splices in
		// without repeating a single event.
		q, err := sinceQuery(*since)
		if err != nil {
			return err
		}
		if w.kinds != "" {
			q.Set("kinds", w.kinds)
		}
		q.Set("limit", "0")
		if err := w.replayJournal(q); err != nil {
			if err != errNoJournal {
				return err
			}
			// Server without persistence: the hub's in-memory recent ring is
			// the only history there is.
			fmt.Fprintln(os.Stderr, "watch: server has no /journal; falling back to the in-memory recent buffer")
			if err := w.replayRecent(false); err != nil {
				return err
			}
		}
		if w.done() {
			return nil
		}
	}
	if *recent {
		// One-shot: print the retained buffer and exit; no retry loop.
		if *since != "" {
			return nil // history already printed from the journal
		}
		return w.replayRecent(true)
	}
	return w.follow()
}

// sinceQuery translates watch's -since value into /journal parameters:
// a bare integer is a hub sequence cursor, anything else must parse as
// a duration ("that long ago").
func sinceQuery(since string) (url.Values, error) {
	q := url.Values{}
	if seq, err := strconv.ParseUint(since, 10, 64); err == nil {
		q.Set("min_seq", strconv.FormatUint(seq, 10))
		return q, nil
	}
	if _, err := time.ParseDuration(since); err != nil {
		return nil, fmt.Errorf("-since %q: want a duration (15m) or a sequence number", since)
	}
	q.Set("since", since) // the server resolves durations against its own clock
	return q, nil
}

// watcher is the stateful stream client: the dedup cursor (lastSeq)
// and printed-event count survive reconnects.
type watcher struct {
	base     string
	kinds    string
	asJSON   bool
	limit    int
	retry    bool
	retryMax time.Duration
	// tenant/device narrow the printed events client-side; the live
	// /anomalies tail has no server-side tenant filter, so `sedspec logs
	// -follow` applies the same filter to both halves of the splice.
	tenant string
	device string

	lastSeq uint64
	seen    int
}

// match applies the client-side tenant/device filter. Drop notices
// always pass: suppressing them would hide that filtered events were
// shed.
func (w *watcher) match(ev *stream.Event) bool {
	if ev.Kind == stream.KindDrop {
		return true
	}
	if w.tenant != "" && ev.Tenant != w.tenant {
		return false
	}
	if w.device != "" && ev.Device != w.device {
		return false
	}
	return true
}

func (w *watcher) url(follow bool) string {
	q := url.Values{}
	if w.kinds != "" {
		q.Set("kinds", w.kinds)
	}
	if follow {
		q.Set("follow", "1")
	} else {
		q.Set("limit", "256")
	}
	return w.base + "/anomalies?" + q.Encode()
}

// follow streams until -n events were printed or (without -retry) the
// stream drops.
func (w *watcher) follow() error {
	backoff := watchInitialBackoff
	first := true
	for {
		if !first {
			// Catch up on whatever the server retained while we were
			// down; connection errors here just mean it is still down.
			_ = w.replayRecent(false)
			if w.done() {
				return nil
			}
		}
		connected, err := w.streamFollow(first)
		if w.done() {
			return nil
		}
		if !w.retry {
			if err == nil {
				err = fmt.Errorf("stream closed by server")
			}
			return err
		}
		if connected {
			backoff = watchInitialBackoff
		}
		if err == nil {
			err = fmt.Errorf("stream closed by server")
		}
		fmt.Fprintf(os.Stderr, "watch: %v; reconnecting in %s\n", err, backoff)
		time.Sleep(backoff)
		backoff *= 2
		if backoff > w.retryMax {
			backoff = w.retryMax
		}
		first = false
	}
}

// replayRecent fetches the server's retained events and prints the
// ones not seen yet. A newest sequence below the cursor means a fresh
// server process (the hub's sequence counter restarted), so the cursor
// resets instead of suppressing the new stream forever.
func (w *watcher) replayRecent(oneShot bool) error {
	resp, err := http.Get(w.url(false))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", w.url(false), resp.Status)
	}
	var events []stream.Event
	var lines []string
	var maxSeq uint64
	sc := newEventScanner(resp.Body)
	for sc.Scan() {
		line := eventLine(sc)
		if line == "" {
			continue
		}
		var ev stream.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			fmt.Fprintf(os.Stderr, "watch: skipping undecodable line: %v\n", err)
			continue
		}
		if ev.Seq > maxSeq {
			maxSeq = ev.Seq
		}
		events = append(events, ev)
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !oneShot && w.lastSeq > 0 && maxSeq > 0 && maxSeq < w.lastSeq {
		fmt.Fprintf(os.Stderr, "watch: server restarted (stream sequence reset); resuming from its beginning\n")
		w.lastSeq = 0
	}
	for i, ev := range events {
		if !oneShot && ev.Seq <= w.lastSeq {
			continue
		}
		if !w.match(&ev) {
			continue
		}
		w.print(lines[i], &ev)
		if w.done() {
			return nil
		}
	}
	return nil
}

// errNoJournal marks a server running without durable persistence
// (no /journal route mounted).
var errNoJournal = fmt.Errorf("server has no /journal endpoint")

// replayJournal fetches durable history from /journal with the given
// query and prints events past the dedup cursor, advancing it — the
// splice point for a subsequent live tail.
func (w *watcher) replayJournal(q url.Values) error {
	target := w.base + "/journal?" + q.Encode()
	resp, err := http.Get(target)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return errNoJournal
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", target, resp.Status)
	}
	sc := newEventScanner(resp.Body)
	for sc.Scan() {
		line := eventLine(sc)
		if line == "" {
			continue
		}
		var ev stream.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			fmt.Fprintf(os.Stderr, "watch: skipping undecodable line: %v\n", err)
			continue
		}
		if ev.Seq > 0 && ev.Seq <= w.lastSeq {
			continue
		}
		if !w.match(&ev) {
			continue
		}
		w.print(line, &ev)
		if w.done() {
			return nil
		}
	}
	return sc.Err()
}

// streamFollow opens the live tail and prints events until it ends.
// The returned bool reports whether the connection was established
// (resetting the caller's backoff even when the stream later drops).
func (w *watcher) streamFollow(announce bool) (bool, error) {
	target := w.url(true)
	resp, err := http.Get(target)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("%s: %s", target, resp.Status)
	}
	if announce {
		fmt.Fprintf(os.Stderr, "watching %s (interrupt to stop)\n", target)
	}
	sc := newEventScanner(resp.Body)
	for sc.Scan() {
		line := eventLine(sc)
		if line == "" {
			continue
		}
		var ev stream.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			fmt.Fprintf(os.Stderr, "watch: skipping undecodable line: %v\n", err)
			continue
		}
		// Drop notices are synthesized per-subscriber and carry no hub
		// sequence; everything else dedups against the resume replay.
		if ev.Kind != stream.KindDrop && ev.Seq > 0 && ev.Seq <= w.lastSeq {
			continue
		}
		if !w.match(&ev) {
			continue
		}
		w.print(line, &ev)
		if w.done() {
			return true, nil
		}
	}
	return true, sc.Err()
}

func (w *watcher) print(line string, ev *stream.Event) {
	if w.asJSON {
		fmt.Println(line)
	} else {
		fmt.Println(ev.String())
	}
	if ev.Seq > w.lastSeq {
		w.lastSeq = ev.Seq
	}
	w.seen++
}

func (w *watcher) done() bool { return w.limit > 0 && w.seen >= w.limit }

func newEventScanner(r interface{ Read([]byte) (int, error) }) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	return sc
}

// eventLine strips whitespace and SSE framing so the same client works
// against sse=1 streams too.
func eventLine(sc *bufio.Scanner) string {
	line := strings.TrimSpace(sc.Text())
	return strings.TrimPrefix(line, "data: ")
}
