package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"

	"sedspec/internal/obs/stream"
)

// runWatch implements `sedspec watch ADDR`: attach to a running
// process's introspection server (its -listen address), subscribe to
// the telemetry stream, and pretty-print events as they arrive. This
// is the resident-process/client split the daemon work needs: the
// enforcing process owns the hub, the watcher is just an NDJSON
// consumer.
func runWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	kinds := fs.String("kinds", "", "comma-separated event kinds to tail (anomaly,audit,swap,attach,detach,spec,health,drop; default: all but health)")
	asJSON := fs.Bool("json", false, "print raw NDJSON instead of the pretty form")
	n := fs.Int("n", 0, "exit after N events (0: until interrupted)")
	recent := fs.Bool("recent", false, "print the server's retained recent events and exit instead of following")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: sedspec watch [flags] ADDR")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	addr := fs.Arg(0)
	if addr == "" {
		fs.Usage()
		return fmt.Errorf("ADDR required (the target process's -listen address)")
	}
	if *kinds != "" {
		if _, err := stream.ParseKinds(*kinds); err != nil {
			return err
		}
	}

	q := url.Values{}
	if *kinds != "" {
		q.Set("kinds", *kinds)
	}
	if !*recent {
		q.Set("follow", "1")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	target := addr + "/anomalies?" + q.Encode()

	resp, err := http.Get(target)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", target, resp.Status)
	}

	if !*recent {
		fmt.Fprintf(os.Stderr, "watching %s (interrupt to stop)\n", target)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	seen := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		// Tolerate SSE framing so the same client works against sse=1
		// streams too.
		line = strings.TrimPrefix(line, "data: ")
		if line == "" {
			continue
		}
		if *asJSON {
			fmt.Println(line)
		} else {
			var ev stream.Event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				fmt.Fprintf(os.Stderr, "watch: skipping undecodable line: %v\n", err)
				continue
			}
			fmt.Println(ev.String())
		}
		seen++
		if *n > 0 && seen >= *n {
			return nil
		}
	}
	return sc.Err()
}
