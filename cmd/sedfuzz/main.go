// Command sedfuzz exercises an emulated device two ways: a raw random I/O
// hammer (robustness: the emulator must stay sound no matter what hits the
// ports), and the guided benign-plus-rare fuzz used to approximate the
// effective-coverage metric of Table III.
//
// Usage:
//
//	sedfuzz -device fdc|ehci|pcnet|sdhci|scsi [-n 20000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"sedspec"
	"sedspec/internal/bench"
	"sedspec/internal/fuzzer"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
	"sedspec/internal/obs"
	"sedspec/internal/simclock"
)

func main() {
	device := flag.String("device", "fdc", "device to fuzz")
	n := flag.Int("n", 20000, "raw random requests to hammer")
	seed := flag.Uint64("seed", 1, "random seed")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /debug/vars on this address")
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := obs.ServeDebug(*pprofAddr, obs.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "sedfuzz: pprof:", err)
			os.Exit(1)
		}
		fmt.Printf("debug server on http://%s/debug/pprof (metrics on /debug/vars)\n", addr)
	}

	if err := run(*device, *n, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "sedfuzz:", err)
		os.Exit(1)
	}
}

func run(device string, n int, seed uint64) error {
	target := bench.TargetByName(device, true)
	if target == nil {
		return fmt.Errorf("unknown device %q", device)
	}

	// Raw hammer.
	m := machine.New(machine.WithMemory(1 << 20))
	dev, opts := target.Build()
	att := m.Attach(dev, opts...)
	space, base, size := windowOf(att)
	completed, faulted := fuzzer.Hammer(att, space, base, size, seed, n)
	fmt.Printf("hammer: %d raw requests, %d completed, %d device faults (emulator stayed sound)\n",
		n, completed, faulted)

	// Guided coverage fuzz.
	m2 := machine.New(machine.WithMemory(1 << 20))
	dev2, opts2 := target.Build()
	att2 := m2.Attach(dev2, opts2...)
	rng := simclock.NewRand(seed)
	s := target.NewSession(sedspec.NewDriver(att2), rng)
	blocks, err := fuzzer.Blocks(att2, func() error {
		if err := s.Prepare(); err != nil {
			return err
		}
		for i := 0; i < 800; i++ {
			var err error
			if rng.Bool(0.04) {
				err = s.Rare()
			} else {
				err = s.Op()
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	total := 0
	prog := dev2.Program()
	for hi := range prog.Handlers {
		if prog.Handlers[hi].Region == 0 { // RegionDevice
			total += len(prog.Handlers[hi].Blocks)
		}
	}
	fmt.Printf("guided fuzz: %d/%d device blocks reached (%.1f%%)\n",
		len(blocks), total, 100*float64(len(blocks))/float64(total))

	cov, err := bench.EffectiveCoverage(target, 800, seed)
	if err != nil {
		return err
	}
	fmt.Printf("effective coverage of the learned specification: %.1f%%\n", cov*100)
	return nil
}

// windowOf recovers the device's bus window for the raw hammer.
func windowOf(att *machine.Attached) (interp.Space, uint64, uint64) {
	switch att.Dev().Name() {
	case "sdhci", "ehci":
		return interp.SpaceMMIO, 0, 0x60
	default:
		return interp.SpacePIO, 0, 0x20
	}
}
