// Command sedfuzz exercises an emulated device two ways: a raw random I/O
// hammer (robustness: the emulator must stay sound no matter what hits the
// ports), and the guided benign-plus-rare fuzz used to approximate the
// effective-coverage metric of Table III.
//
// Usage:
//
//	sedfuzz -device fdc|ehci|pcnet|sdhci|scsi [-n 20000] [-seed 1]
//	        [-spec-in spec.bin]
//
// With -spec-in the raw hammer additionally runs under enforcement: the
// binary specification (written by sedspec -spec-out) is loaded and an
// ES-Checker in enhancement mode rides the same random I/O, so the
// checker itself is fuzzed for robustness and the run reports how much
// of the garbage the spec flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sedspec"
	"sedspec/internal/bench"
	"sedspec/internal/checker"
	"sedspec/internal/cmdutil"
	"sedspec/internal/core"
	"sedspec/internal/fuzzer"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
	"sedspec/internal/obs"
	"sedspec/internal/obs/span"
	"sedspec/internal/simclock"
)

func main() {
	device := flag.String("device", "fdc", "device to fuzz")
	n := flag.Int("n", 20000, "raw random requests to hammer")
	seed := flag.Uint64("seed", 1, "random seed")
	specIn := flag.String("spec-in", "", "hammer under enforcement of this binary specification (enhancement mode)")
	metrics := flag.String("metrics", "", "periodically export checker metrics as JSON to this file")
	spans := flag.String("spans", "", "write the lifecycle span trace as Chrome trace_event JSON to this file")
	listen := flag.String("listen", "", "serve the introspection endpoints (/healthz /fleet /metrics /anomalies /coverage /buildinfo /debug/vars /debug/pprof) on this address")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -listen")
	budget := flag.Float64("overhead-budget", 0, "enforcement-overhead watchdog budget in ns per checked I/O (0 disables)")
	hold := flag.Bool("hold", false, "after the run, keep serving -listen until interrupted (for probing a finished run)")
	flag.Parse()

	addr := cmdutil.ResolveListen(*listen, *pprofAddr)
	serving := false
	if addr != "" {
		if _, err := cmdutil.ServeIntrospection(addr, *budget); err != nil {
			fmt.Fprintln(os.Stderr, "sedfuzz: listen:", err)
			os.Exit(1)
		}
		serving = true
	}
	fl := cmdutil.NewFlusher()
	if *metrics != "" {
		fl.Add(obs.ExportEvery(*metrics, time.Second, obs.Default()))
	}
	if *spans != "" {
		path := *spans
		fl.Add(func() error { return cmdutil.WriteSpans(path, span.Default()) })
	}

	err := run(*device, *n, *seed, *specIn)
	fl.Flush()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sedfuzz:", err)
		os.Exit(1)
	}
	if *hold && serving {
		fmt.Println("holding for introspection; interrupt to exit")
		select {}
	}
}

func run(device string, n int, seed uint64, specIn string) error {
	target := bench.TargetByName(device, true)
	if target == nil {
		return fmt.Errorf("unknown device %q", device)
	}

	// Raw hammer, optionally with an enforcing checker riding along. The
	// checker runs in enhancement mode with a no-op halt hook so blocking
	// anomalies are counted rather than stopping the hammer.
	m := machine.New(machine.WithMemory(1 << 20))
	dev, opts := target.Build()
	att := m.Attach(dev, opts...)
	var chk *checker.Checker
	if specIn != "" {
		data, err := os.ReadFile(specIn)
		if err != nil {
			return err
		}
		spec, err := core.DecodeBinary(dev.Program(), data)
		if err != nil {
			return fmt.Errorf("%s: %w", specIn, err)
		}
		chk = sedspec.Protect(att, spec,
			checker.WithMode(checker.ModeEnhancement),
			checker.WithHalt(func() {}))
	}
	space, base, size := windowOf(att)
	completed, faulted := fuzzer.Hammer(att, space, base, size, seed, n)
	fmt.Printf("hammer: %d raw requests, %d completed, %d device faults (emulator stayed sound)\n",
		n, completed, faulted)
	if chk != nil {
		st := chk.Stats()
		fmt.Printf("enforcement: %d rounds checked, %d blocked (param), %d warned (indirect %d, cond %d)\n",
			st.Rounds, st.ParamAnomalies, st.IndirectAnomalies+st.CondAnomalies,
			st.IndirectAnomalies, st.CondAnomalies)
	}

	// Guided coverage fuzz.
	m2 := machine.New(machine.WithMemory(1 << 20))
	dev2, opts2 := target.Build()
	att2 := m2.Attach(dev2, opts2...)
	rng := simclock.NewRand(seed)
	s := target.NewSession(sedspec.NewDriver(att2), rng)
	blocks, err := fuzzer.Blocks(att2, func() error {
		if err := s.Prepare(); err != nil {
			return err
		}
		for i := 0; i < 800; i++ {
			var err error
			if rng.Bool(0.04) {
				err = s.Rare()
			} else {
				err = s.Op()
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	total := 0
	prog := dev2.Program()
	for hi := range prog.Handlers {
		if prog.Handlers[hi].Region == 0 { // RegionDevice
			total += len(prog.Handlers[hi].Blocks)
		}
	}
	fmt.Printf("guided fuzz: %d/%d device blocks reached (%.1f%%)\n",
		len(blocks), total, 100*float64(len(blocks))/float64(total))

	cov, err := bench.EffectiveCoverage(target, 800, seed)
	if err != nil {
		return err
	}
	fmt.Printf("effective coverage of the learned specification: %.1f%%\n", cov*100)
	return nil
}

// windowOf recovers the device's bus window for the raw hammer.
func windowOf(att *machine.Attached) (interp.Space, uint64, uint64) {
	switch att.Dev().Name() {
	case "sdhci", "ehci":
		return interp.SpaceMMIO, 0, 0x60
	default:
		return interp.SpacePIO, 0, 0x20
	}
}
