// Command sedbench regenerates the tables and figures of the SEDSpec
// paper's evaluation against this repository's emulated-device substrate.
//
// Usage:
//
//	sedbench [-experiment all|table1|table2|table3|fig34|fig5|comparison|ablation|checker|dispatch|coverage|throughput|batch|swap]
//	         [-full] [-frames N] [-mib N] [-checker-iters N] [-checker-out FILE]
//	         [-dispatch-iters N] [-dispatch-out FILE]
//	         [-coverage-iters N] [-coverage-out FILE]
//	         [-throughput-ops N] [-throughput-iters N] [-throughput-e2e-ops N] [-throughput-out FILE]
//	         [-batch-ops N] [-batch-iters N] [-batch-size N] [-batch-out FILE]
//	         [-swap-iters N] [-swap-store DIR] [-swap-out FILE]
//
// The checker experiment measures per-I/O ES-Checker overhead (sealed
// fast path vs the pre-seal reference engine) and writes the rows as JSON
// to -checker-out (default BENCH_checker.json).
//
// The dispatch experiment compares the two sealed engines head to head —
// the switch walker against the threaded-code stream compiled at Seal()
// time — over the same captured streams, and writes -dispatch-out
// (default BENCH_dispatch.json) including each device's fused-pair count
// and fusion density from the lowering report.
//
// The coverage experiment measures what the ES-CFG coverage counters add
// to the sealed walker (counters on vs WithCoverage(false)) and writes
// -coverage-out (default BENCH_coverage.json).
//
// The swap experiment measures the spec lifecycle subsystem: store
// cache-hit load vs a fresh learn, per-I/O check cost while another
// goroutine hot-swaps spec versions continuously, and per-swap latency
// (publication + grace period). Rows go to -swap-out (default
// BENCH_swap.json); -swap-store reuses an existing store directory so a
// second run exercises the warm cache.
//
// The throughput experiment measures checked-I/O scaling when one sealed
// spec is shared across 1, 2, 4, 8 concurrent enforcement sessions per
// device, with GOMAXPROCS pinned to min(sessions, host CPUs) per row and
// a per-round/batched delivery ablation at every point — both the bare
// check loop (captured-stream replay) and full guest sessions on a
// machine pool — and writes -throughput-out (default
// BENCH_throughput.json, version 2). The check loop must be
// allocation-free at steady state; any point that allocates fails the
// experiment.
//
// The batch experiment isolates what batched delivery (PreIOBatch ring
// sweeps) amortizes against the per-round path on a single session per
// device, and writes -batch-out (default BENCH_batch.json).
//
// With -full, Table II runs the paper's 10/20/30 virtual hours (slow);
// otherwise a scaled-down 2/4/6-hour study with a proportionally raised
// rare-command rate preserves the regime.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sedspec/internal/bench"
	"sedspec/internal/cmdutil"
	"sedspec/internal/obs"
	"sedspec/internal/obs/span"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	full := flag.Bool("full", false, "run Table II at the paper's full 10/20/30 hours")
	frames := flag.Int("frames", 600, "frames per Figure 5 bandwidth series")
	mib := flag.Int("mib", 8, "MiB per Figure 3/4 data point")
	checkerIters := flag.Int("checker-iters", 1_000_000, "timed replay rounds per engine for the checker experiment")
	checkerOut := flag.String("checker-out", "BENCH_checker.json", "output file for the checker experiment's JSON rows")
	dispatchIters := flag.Int("dispatch-iters", 1_000_000, "timed replay rounds per engine for the dispatch experiment")
	dispatchOut := flag.String("dispatch-out", "BENCH_dispatch.json", "output file for the dispatch experiment's JSON rows")
	coverageIters := flag.Int("coverage-iters", 1_000_000, "timed replay rounds per side for the coverage experiment")
	coverageOut := flag.String("coverage-out", "BENCH_coverage.json", "output file for the coverage experiment's JSON rows")
	tpOps := flag.Int("throughput-ops", 60, "benign session ops captured per device for the throughput replay")
	tpIters := flag.Int("throughput-iters", 200_000, "timed replay rounds per session for the throughput experiment")
	tpE2EOps := flag.Int("throughput-e2e-ops", 200, "benign ops per full guest session for the e2e throughput rows")
	tpOut := flag.String("throughput-out", "BENCH_throughput.json", "output file for the throughput experiment's JSON rows")
	batchOps := flag.Int("batch-ops", 60, "benign session ops captured per device for the batch replay")
	batchIters := flag.Int("batch-iters", 600_000, "timed replay rounds per delivery path for the batch experiment")
	batchSize := flag.Int("batch-size", bench.DefaultBatchSize, "requests per batched delivery window")
	batchOut := flag.String("batch-out", "BENCH_batch.json", "output file for the batch experiment's JSON rows")
	swapIters := flag.Int("swap-iters", 200_000, "timed replay rounds per phase for the swap experiment")
	swapStore := flag.String("swap-store", "", "spec store directory for the swap experiment (default: a fresh temp dir)")
	swapOut := flag.String("swap-out", "BENCH_swap.json", "output file for the swap experiment's JSON rows")
	metrics := flag.String("metrics", "", "periodically export checker metrics as JSON to this file")
	spans := flag.String("spans", "", "write the lifecycle span trace as Chrome trace_event JSON to this file")
	listen := flag.String("listen", "", "serve the introspection endpoints (/healthz /fleet /metrics /anomalies /coverage /buildinfo /debug/vars /debug/pprof) on this address (profile live runs)")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -listen")
	budget := flag.Float64("overhead-budget", 0, "enforcement-overhead watchdog budget in ns per checked I/O (0 disables)")
	flag.Parse()

	cfg := runConfig{
		full: *full, frames: *frames, mib: *mib,
		checkerIters: *checkerIters, checkerOut: *checkerOut,
		dispatchIters: *dispatchIters, dispatchOut: *dispatchOut,
		coverageIters: *coverageIters, coverageOut: *coverageOut,
		tpOps: *tpOps, tpIters: *tpIters, tpE2EOps: *tpE2EOps, tpOut: *tpOut,
		batchOps: *batchOps, batchIters: *batchIters, batchSize: *batchSize, batchOut: *batchOut,
		swapIters: *swapIters, swapStore: *swapStore, swapOut: *swapOut,
	}
	if err := realMain(*experiment, cfg, *metrics, cmdutil.ResolveListen(*listen, *pprofAddr), *budget, *spans); err != nil {
		fmt.Fprintln(os.Stderr, "sedbench:", err)
		os.Exit(1)
	}
}

// realMain brackets run with the observability plumbing so the final
// metrics/span exports happen on the error path and on SIGINT/SIGTERM
// too (os.Exit skips defers).
func realMain(experiment string, cfg runConfig, metrics, listenAddr string, budget float64, spans string) error {
	if listenAddr != "" {
		if _, err := cmdutil.ServeIntrospection(listenAddr, budget); err != nil {
			return fmt.Errorf("listen: %w", err)
		}
	}
	fl := cmdutil.NewFlusher()
	defer fl.Flush()
	if metrics != "" {
		fl.Add(obs.ExportEvery(metrics, time.Second, obs.Default()))
	}
	if spans != "" {
		fl.Add(func() error { return cmdutil.WriteSpans(spans, span.Default()) })
	}
	return run(experiment, cfg)
}

type runConfig struct {
	full          bool
	frames, mib   int
	checkerIters  int
	checkerOut    string
	dispatchIters int
	dispatchOut   string
	coverageIters int
	coverageOut   string
	tpOps         int
	tpIters       int
	tpE2EOps      int
	tpOut         string
	batchOps      int
	batchIters    int
	batchSize     int
	batchOut      string
	swapIters     int
	swapStore     string
	swapOut       string
}

func run(experiment string, cfg runConfig) error {
	full, frames, mib := cfg.full, cfg.frames, cfg.mib
	checkerIters, checkerOut := cfg.checkerIters, cfg.checkerOut
	w := os.Stdout
	want := func(name string) bool { return experiment == "all" || experiment == name }

	if want("table1") {
		rows, err := bench.Table1(true)
		if err != nil {
			return err
		}
		bench.WriteTable1(w, rows)
		fmt.Fprintln(w)
	}

	var fpr = map[string]float64{}
	if want("table2") || want("table3") {
		cfg := bench.DefaultFPConfig()
		if !full {
			cfg.Hours = []int{2, 4, 6}
			cfg.RarePerCase *= 5 // same expected counts in a fifth of the time
		}
		var rows []*bench.Table2Row
		for _, t := range bench.Targets(true) {
			row, err := bench.Table2(t, cfg)
			if err != nil {
				return err
			}
			rows = append(rows, row)
			fpr[t.Name] = row.FPR
		}
		if want("table2") {
			bench.WriteTable2(w, cfg.Hours, rows)
			if !full {
				fmt.Fprintln(w, "  (scaled study: hours x1/5, rare-command rate x5; pass -full for 10/20/30h)")
			}
			fmt.Fprintln(w)
		}
	}

	if want("table3") {
		rows, err := bench.Table3Detection()
		if err != nil {
			return err
		}
		cov := map[string]float64{}
		for _, t := range bench.Targets(true) {
			c, err := bench.EffectiveCoverage(t, 800, 3)
			if err != nil {
				return err
			}
			cov[t.Name] = c
		}
		bench.WriteTable3(w, rows, fpr, cov)
		fmt.Fprintln(w)
	}

	if want("fig34") {
		for _, name := range []string{"fdc", "ehci", "sdhci", "scsi"} {
			t := bench.TargetByName(name, true)
			blocks := []int{4, 64, 512, 2048}
			if name == "fdc" {
				blocks = []int{4, 64, 512, 1024} // 2.88MB medium cap
			}
			for _, write := range []bool{true, false} {
				points, err := bench.Figure34(t, blocks, mib, write)
				if err != nil {
					return err
				}
				bench.WriteFigure34(w, points)
			}
		}
		fmt.Fprintln(w)
	}

	if want("fig5") {
		points, err := bench.Figure5(frames)
		if err != nil {
			return err
		}
		bench.WriteFigure5(w, points)
		fmt.Fprintln(w)
	}

	if want("comparison") {
		rows, err := bench.ComparisonNioh()
		if err != nil {
			return err
		}
		bench.WriteComparison(w, rows)
		fmt.Fprintln(w)
	}

	if want("checker") {
		var rows []*bench.CheckerBenchRow
		for _, t := range bench.Targets(true) {
			row, err := bench.CheckerOverhead(t, 60, checkerIters)
			if err != nil {
				return err
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "checker %-6s baseline %8.1f ns/op  sealed %8.1f ns/op  -%5.1f%%  %.3f allocs/op\n",
				t.Name, row.BaselineNsPerOp, row.SealedNsPerOp, row.SpeedupPct, row.SealedAllocsPerOp)
		}
		f, err := os.Create(checkerOut)
		if err != nil {
			return err
		}
		if err := bench.WriteCheckerJSON(f, rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", checkerOut)
		fmt.Fprintln(w)
	}

	if want("dispatch") {
		var rows []*bench.DispatchBenchRow
		for _, t := range bench.Targets(true) {
			row, err := bench.DispatchOverhead(t, 60, cfg.dispatchIters)
			if err != nil {
				return err
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "dispatch %-6s switch %8.1f ns/op  threaded %8.1f ns/op  -%5.1f%%  %.3f allocs/op  (%d fused pairs, density %.2f)\n",
				t.Name, row.SwitchNsPerOp, row.ThreadedNsPerOp, row.SpeedupPct, row.ThreadedAllocsPerOp,
				row.FusedPairs, row.FusedDensity)
		}
		f, err := os.Create(cfg.dispatchOut)
		if err != nil {
			return err
		}
		if err := bench.WriteDispatchJSON(f, rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.dispatchOut)
		fmt.Fprintln(w)
	}

	if want("coverage") {
		var rows []*bench.CoverageBenchRow
		for _, t := range bench.Targets(true) {
			row, err := bench.CoverageOverhead(t, 60, cfg.coverageIters)
			if err != nil {
				return err
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "coverage %-6s off %8.1f ns/op  on %8.1f ns/op  +%5.2f%%  %.3f allocs/op  (%d/%d edges covered)\n",
				t.Name, row.OffNsPerOp, row.OnNsPerOp, row.OverheadPct, row.OnAllocsPerOp,
				row.CoveredAtEnd, row.TrainedEdges)
		}
		f, err := os.Create(cfg.coverageOut)
		if err != nil {
			return err
		}
		if err := bench.WriteCoverageJSON(f, rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.coverageOut)
		fmt.Fprintln(w)
	}

	if want("throughput") {
		counts := bench.SessionCounts()
		if bench.DegradedParallelism() {
			fmt.Fprintf(os.Stderr, "sedbench: WARNING: host has %d CPU(s) but the session ladder tops out at %d.\n"+
				"sedbench: rows with sessions > host CPUs time-slice on shared cores; their scaling numbers are\n"+
				"sedbench: work-normalized estimates, not wall-clock parallelism (degraded_parallelism=true in %s).\n"+
				"sedbench: for wall-clock scaling, re-run on a host with >= %d cores:\n"+
				"sedbench:     go run ./cmd/sedbench -experiment throughput\n",
				runtime.NumCPU(), counts[len(counts)-1], cfg.tpOut, counts[len(counts)-1])
		}
		var rows []*bench.ThroughputRow
		var e2e []*bench.E2ERow
		for _, t := range bench.Targets(true) {
			r, err := bench.NewCheckerReplay(t, cfg.tpOps)
			if err != nil {
				return err
			}
			trs, err := bench.Throughput(r, cfg.tpIters, counts)
			if err != nil {
				return err
			}
			for _, row := range trs {
				path := "per-round"
				if row.Batched {
					path = fmt.Sprintf("batch=%d", row.BatchSize)
				}
				fmt.Fprintf(w, "throughput %-6s x%-2d %-9s gomaxprocs %-2d %10.0f checked-I/Os/s  scaling %5.2fx  eff %5.1f%%\n",
					row.Device, row.Sessions, path, row.GoMaxProcs, row.AggPerSec, row.ScalingX, 100*row.Efficiency)
			}
			rows = append(rows, trs...)
			ers, err := bench.ThroughputE2E(t, r.Spec, cfg.tpE2EOps, counts)
			if err != nil {
				return err
			}
			for _, row := range ers {
				fmt.Fprintf(w, "e2e        %-6s x%-2d  %10.0f checked-I/Os/s  scaling %5.2fx\n",
					row.Device, row.Sessions, row.AggPerSec, row.ScalingX)
			}
			e2e = append(e2e, ers...)
		}
		f, err := os.Create(cfg.tpOut)
		if err != nil {
			return err
		}
		if err := bench.WriteThroughputJSON(f, rows, e2e); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.tpOut)
		fmt.Fprintln(w)
	}

	if want("batch") {
		var rows []*bench.BatchBenchRow
		for _, t := range bench.Targets(true) {
			row, err := bench.BatchOverhead(t, cfg.batchOps, cfg.batchIters, cfg.batchSize)
			if err != nil {
				return err
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "batch %-6s per-round %8.1f ns/op  batched %8.1f ns/op  -%5.1f%%  (window %d, 0 allocs/op)\n",
				row.Device, row.PerRoundNsPerOp, row.BatchedNsPerOp, row.SpeedupPct, row.BatchSize)
		}
		f, err := os.Create(cfg.batchOut)
		if err != nil {
			return err
		}
		if err := bench.WriteBatchJSON(f, rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.batchOut)
		fmt.Fprintln(w)
	}

	if want("swap") {
		dir := cfg.swapStore
		if dir == "" {
			tmp, err := os.MkdirTemp("", "sedspec-store-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		var rows []*bench.SwapBenchRow
		for _, t := range bench.Targets(true) {
			row, err := bench.SwapBench(t, dir, 60, cfg.swapIters)
			if err != nil {
				return err
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "swap %-6s learn %8.2f ms  store load %8.3f ms  hit %6.0fx | steady %7.1f ns/op  under-swap %7.1f ns/op (%.2fx) | %5d swaps @ %.1f us\n",
				row.Device, float64(row.LearnNs)/1e6, float64(row.StoreLoadNs)/1e6, row.CacheSpeedup,
				row.SteadyNsPerOp, row.UnderSwapNsPerOp, row.SwapCostRatio,
				row.Swaps, row.SwapLatencyNs/1e3)
		}
		f, err := os.Create(cfg.swapOut)
		if err != nil {
			return err
		}
		if err := bench.WriteSwapJSON(f, rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.swapOut)
		fmt.Fprintln(w)
	}

	if want("ablation") {
		var reds []*bench.AblationReductionRow
		var filts []*bench.AblationFilterRow
		for _, t := range bench.Targets(true) {
			r, err := bench.AblationReduction(t, 150)
			if err != nil {
				return err
			}
			reds = append(reds, r)
			f, err := bench.AblationFilters(t)
			if err != nil {
				return err
			}
			filts = append(filts, f)
		}
		bench.WriteAblations(w, reds, filts)
	}
	return nil
}
