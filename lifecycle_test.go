// Spec lifecycle acceptance tests: the versioned store, the enhancement
// pipeline that folds audited warnings into a new spec version, and the
// zero-downtime hot-swap that installs it under live enforcement.
package sedspec_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/machine"
	"sedspec/internal/obs"
	"sedspec/internal/obs/stream"
)

func lifecycleBuild() (machine.Device, []machine.AttachOption) {
	return testdev.New(testdev.Options{}),
		[]machine.AttachOption{machine.WithPIO(testdev.PortCmd, testdev.PortCount)}
}

// roundTrip pushes a spec through the binary codec, yielding an equivalent
// but distinct Spec — the cheapest way to get a second swappable version.
func roundTrip(t *testing.T, att *sedspec.Attached, spec *sedspec.Spec) *sedspec.Spec {
	t.Helper()
	data, err := spec.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.DecodeBinary(att.Dev().Program(), data)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestSpecStorePutLookupLoad(t *testing.T) {
	_, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	st, err := sedspec.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	key := sedspec.StoreKey(att, "benign-v1")
	specEvents := stream.Default().Published(stream.KindSpec)
	meta, err := st.Put(spec, sedspec.SpecVersion{
		ProgramHash: key.ProgramHash,
		CorpusHash:  key.CorpusHash,
		CreatedBy:   "learn",
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 1 || meta.Device != spec.Device || meta.Blob == "" {
		t.Fatalf("published meta incomplete: %+v", meta)
	}
	// A fresh publication is fleet-visible telemetry.
	if got := stream.Default().Published(stream.KindSpec); got != specEvents+1 {
		t.Errorf("fresh Put published %d spec events, want 1", got-specEvents)
	}
	recent := stream.Default().Recent(stream.MaskOf(stream.KindSpec), 1)
	if len(recent) != 1 || recent[0].Spec == nil ||
		recent[0].Spec.Generation != meta.Generation || recent[0].Spec.Blob != meta.Blob {
		t.Errorf("spec event payload wrong: %+v", recent)
	}

	// Lookup by content key, Load verifies the blob hash and rebinds.
	got, ok := st.Lookup(key)
	if !ok || got.Blob != meta.Blob {
		t.Fatalf("Lookup failed: %+v ok=%t", got, ok)
	}
	back, err := st.Load(att.Dev().Program(), got)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dot() != spec.Dot() {
		t.Error("loaded spec's ES-CFG differs from the published one")
	}

	// Re-publishing the identical spec under the same key is idempotent.
	again, err := st.Put(spec, sedspec.SpecVersion{
		ProgramHash: key.ProgramHash, CorpusHash: key.CorpusHash, CreatedBy: "learn",
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.Generation != 1 || len(st.Versions(spec.Device)) != 1 {
		t.Errorf("idempotent Put created a new version: %+v", again)
	}
	if got := stream.Default().Published(stream.KindSpec); got != specEvents+1 {
		t.Errorf("idempotent Put re-published a spec event (%d total)", got-specEvents)
	}

	// A different corpus is a different key and a new generation.
	meta2, err := st.Put(spec, sedspec.SpecVersion{
		ProgramHash: key.ProgramHash,
		CorpusHash:  sedspec.StoreKey(att, "benign-v2").CorpusHash,
		CreatedBy:   "learn",
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Generation != 2 {
		t.Errorf("second corpus generation = %d, want 2", meta2.Generation)
	}
	latest, ok := st.Latest(spec.Device)
	if !ok || latest.Generation != 2 {
		t.Errorf("Latest = %+v ok=%t, want generation 2", latest, ok)
	}

	// The index survives a reopen: a second Store on the same directory
	// sees every published version.
	st2, err := sedspec.OpenStore(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := st2.Lookup(key); !ok || got.Blob != meta.Blob {
		t.Errorf("reopened store lost the version: %+v ok=%t", got, ok)
	}
}

// TestStoreDetectsCorruptBlob: Load verifies the content address, and
// LearnCached degrades to a fresh learn when the stored blob is damaged.
func TestStoreDetectsCorruptBlob(t *testing.T) {
	_, att := setup(t, testdev.Options{})
	st, err := sedspec.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, meta, _, err := sedspec.LearnCached(st, att, "benign-v1", benignTrain)
	if err != nil {
		t.Fatal(err)
	}
	blob := filepath.Join(st.Dir(), "blobs", meta.Blob+".spec")
	data, err := os.ReadFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(blob, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(att.Dev().Program(), meta); err == nil {
		t.Error("Load accepted a corrupt blob")
	}
	// The cache-hit path notices the damage and relearns.
	spec, _, hit, err := sedspec.LearnCached(st, att, "benign-v1", benignTrain)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("corrupt blob reported as a cache hit")
	}
	if spec == nil || spec.Stats.TrainingRounds == 0 {
		t.Error("fallback learn produced no spec")
	}
}

func TestLearnCachedHitsStore(t *testing.T) {
	st, err := sedspec.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	_, att1 := setup(t, testdev.Options{})
	trainCalls := 0
	counting := func(d *sedspec.Driver) error {
		trainCalls++
		return benignTrain(d)
	}
	spec1, meta1, hit, err := sedspec.LearnCached(st, att1, "benign-v1", counting)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first learn reported a cache hit on an empty store")
	}
	if trainCalls == 0 {
		t.Fatal("miss path did not run the training corpus")
	}

	// Same program, same corpus tag, fresh attachment: cache hit, no
	// training at all.
	_, att2 := setup(t, testdev.Options{})
	trainCalls = 0
	spec2, meta2, hit, err := sedspec.LearnCached(st, att2, "benign-v1", counting)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("relearning the same device+corpus missed the cache")
	}
	if trainCalls != 0 {
		t.Errorf("cache hit ran the training corpus %d times", trainCalls)
	}
	if meta2.Blob != meta1.Blob || meta2.Generation != meta1.Generation {
		t.Errorf("hit returned a different version: %+v vs %+v", meta2, meta1)
	}
	if spec2.Dot() != spec1.Dot() {
		t.Error("cached spec's ES-CFG differs from the learned one")
	}

	// A different corpus tag misses and trains.
	_, att3 := setup(t, testdev.Options{})
	_, meta3, hit, err := sedspec.LearnCached(st, att3, "benign-v2", counting)
	if err != nil {
		t.Fatal(err)
	}
	if hit || trainCalls == 0 {
		t.Errorf("new corpus tag should miss: hit=%t trainCalls=%d", hit, trainCalls)
	}
	if meta3.Generation == meta1.Generation {
		t.Error("new corpus published under the old generation")
	}
}

// TestUnprotectRetiresSharedSession is the regression test for the
// detach bug: Unprotect must Close the session checker, folding its
// counters and recorder into the retired banks, so that a re-
// ProtectShared on the same attachment neither double-counts nor leaks a
// live recorder.
func TestUnprotectRetiresSharedSession(t *testing.T) {
	_, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	reg := obs.NewRegistry()
	sh := sedspec.NewSharedChecker(spec, checker.WithObs(reg))

	sedspec.ProtectShared(att, sh)
	d := sedspec.NewDriver(att)
	if err := benignTrain(d); err != nil {
		t.Fatal(err)
	}
	once := sh.Stats().Rounds
	if once == 0 {
		t.Fatal("no rounds recorded")
	}

	sedspec.Unprotect(att)
	if sh.Sessions() != 0 {
		t.Fatalf("Unprotect left %d sessions open", sh.Sessions())
	}
	if reg.Recorders() != 0 {
		t.Fatalf("Unprotect left %d live recorders registered", reg.Recorders())
	}

	// Protect the same attachment again and repeat the workload: exactly
	// twice the rounds, one live recorder, and a registry aggregate that
	// matches — no double counting across the detach.
	sedspec.ProtectShared(att, sh)
	if err := benignTrain(d); err != nil {
		t.Fatal(err)
	}
	if got := sh.Stats().Rounds; got != 2*once {
		t.Errorf("rounds after re-protect = %d, want %d", got, 2*once)
	}
	if reg.Recorders() != 1 {
		t.Errorf("live recorders = %d, want 1", reg.Recorders())
	}
	if got := reg.Snapshot().Device(spec.Device).Rounds; got != 2*once {
		t.Errorf("registry rounds = %d, want %d", got, 2*once)
	}
}

// TestEnhancePipeline drives the full loop the subsystem exists for: a
// deployment in enhancement mode audits a benign-but-untrained command,
// the pipeline replays the audit into a new spec version published to the
// store, and a hot-swap installs it under the live session — after which
// the command passes without a warning and the exploit is still blocked.
func TestEnhancePipeline(t *testing.T) {
	m, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	st, err := sedspec.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := sedspec.StoreKey(att, "benign-v1")
	parent, err := st.Put(spec, sedspec.SpecVersion{
		ProgramHash: key.ProgramHash, CorpusHash: key.CorpusHash, CreatedBy: "learn",
	})
	if err != nil {
		t.Fatal(err)
	}

	sh := sedspec.NewSharedChecker(spec, checker.WithMode(checker.ModeEnhancement))
	sedspec.ProtectShared(att, sh)
	d := sedspec.NewDriver(att)
	if err := benignTrain(d); err != nil {
		t.Fatal(err)
	}
	// The rare diagnostic command warns (it is benign but untrained) and
	// is audited with the request bytes and the generation that checked it.
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
		t.Fatalf("enhancement mode blocked the diagnostic command: %v", err)
	}
	audit := sh.Audit()
	if len(audit) != 1 {
		t.Fatalf("audit records = %d, want 1", len(audit))
	}
	a := audit[0]
	if a.Strategy != checker.StrategyConditionalJump || !a.Write ||
		a.SpecGen != 1 || len(a.Data) != 1 || a.Data[0] != testdev.CmdDiag {
		t.Fatalf("audit record wrong: %+v", a)
	}

	// Enhance on a fresh instance of the same device program and publish.
	_, eatt := setup(t, testdev.Options{})
	enhanced, meta, err := sedspec.EnhanceToStore(st, eatt, parent, benignTrain, audit)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Parent != parent.Generation || meta.CreatedBy != "enhance" {
		t.Errorf("enhanced meta lineage wrong: %+v", meta)
	}
	if len(meta.Warnings) != 1 || meta.Warnings[0].Strategy != checker.StrategyConditionalJump.String() {
		t.Errorf("audit trail not recorded: %+v", meta.Warnings)
	}
	if enhanced.Stats.Commands <= spec.Stats.Commands {
		t.Errorf("enhanced spec learned no new commands: %d vs %d",
			enhanced.Stats.Commands, spec.Stats.Commands)
	}
	// Enhancing the same parent with the same warnings is a cache hit.
	if _, again, err := sedspec.EnhanceToStore(st, eatt, parent, benignTrain, audit); err != nil {
		t.Fatal(err)
	} else if again.Generation != meta.Generation {
		t.Errorf("re-enhance published a new generation: %d vs %d", again.Generation, meta.Generation)
	}

	// Hot-swap the enhanced version under the running session.
	sh.ClearWarnings()
	sh.ClearAudit()
	if err := sh.Swap(enhanced); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if sh.Generation() != 2 {
		t.Errorf("generation after swap = %d, want 2", sh.Generation())
	}

	// The formerly-warning command now passes silently; the exploit is
	// still blocked; the machine never went down.
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
		t.Fatalf("diagnostic command blocked after enhancement: %v", err)
	}
	if got := sh.Warnings(); got != nil {
		t.Errorf("enhanced spec still warns: %+v", got)
	}
	err = venomExploit(d, 32)
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyParameter {
		t.Fatalf("venom not blocked under the enhanced spec: %v", err)
	}
	if anom.SpecGen != 2 {
		t.Errorf("anomaly spec generation = %d, want 2", anom.SpecGen)
	}
	if !m.Halted() {
		t.Error("parameter anomaly should halt even in enhancement mode")
	}
}

// TestSwapHammerAcceptance is the subsystem's acceptance test: four
// concurrent sessions replay benign-plus-exploit traffic through one
// shared engine while another goroutine hot-swaps between two equivalent
// spec versions at least 100 times. Every exploit must be detected, no
// benign round may be flagged, and every recorded event must carry the
// generation that checked it. Run under -race this also proves the swap
// path is data-race free against the lock-free check path.
func TestSwapHammerAcceptance(t *testing.T) {
	_, latt := setup(t, testdev.Options{})
	specA := learn(t, latt).Spec
	specB := roundTrip(t, latt, specA)

	reg := obs.NewRegistry()
	sh := sedspec.NewSharedChecker(specA, checker.WithObs(reg))

	const n = 4
	iters := 25
	if testing.Short() {
		iters = 5
	}
	p := machine.NewPool(n, lifecycleBuild)
	chks := make([]*checker.Checker, n)
	for i, s := range p.Sessions() {
		// A no-op halt keeps the session serving across blocked exploits.
		// Engines are mixed per session — even sessions adopt each swapped
		// version's compiled threaded stream, odd ones walk its sealed
		// block table — so both sealed engines race the RCU publication
		// path at once.
		opts := []checker.Option{checker.WithHalt(func() {})}
		if i%2 == 1 {
			opts = append(opts, checker.WithThreadedDispatch(false))
		}
		chks[i] = sedspec.ProtectShared(s.Attached(), sh, opts...)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var swapErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		specs := [2]*sedspec.Spec{specB, specA}
		for i := 0; ; i++ {
			if err := sh.Swap(specs[i%2]); err != nil {
				swapErr = err
				return
			}
			runtime.Gosched()
			select {
			case <-done:
				if i+1 >= 100 {
					return
				}
			default:
			}
		}
	}()

	err := p.Run(func(s *machine.Session) error {
		d := sedspec.NewDriver(s.Attached())
		for it := 0; it < iters; it++ {
			if err := benignTrain(d); err != nil {
				return fmt.Errorf("session %d iter %d: benign traffic flagged: %w", s.ID(), it, err)
			}
			err := venomExploit(d, 32)
			var anom *sedspec.Anomaly
			if !errors.As(err, &anom) {
				return fmt.Errorf("session %d iter %d: exploit not blocked: %v", s.ID(), it, err)
			}
			if anom.Strategy != checker.StrategyParameter {
				return fmt.Errorf("session %d iter %d: wrong strategy %v", s.ID(), it, anom.Strategy)
			}
			if anom.SpecGen == 0 {
				return fmt.Errorf("session %d iter %d: anomaly without spec generation", s.ID(), it)
			}
		}
		return nil
	})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if swapErr != nil {
		t.Fatalf("Swap failed mid-hammer: %v", swapErr)
	}

	if sh.SwapCount() < 100 {
		t.Errorf("swaps = %d, want >= 100", sh.SwapCount())
	}
	if sh.Generation() != sh.SwapCount()+1 {
		t.Errorf("generation %d != swaps %d + 1", sh.Generation(), sh.SwapCount())
	}

	// Zero missed detections, zero swap-attributable false anomalies.
	agg := sh.Stats()
	wantBlocked := uint64(n * iters)
	if agg.ParamAnomalies != wantBlocked || agg.Blocked != wantBlocked {
		t.Errorf("detections = %d blocked = %d, want %d each", agg.ParamAnomalies, agg.Blocked, wantBlocked)
	}
	if agg.CondAnomalies != 0 || agg.IndirectAnomalies != 0 || agg.Warnings != 0 {
		t.Errorf("swap-attributable false anomalies: %+v", agg)
	}

	// Every recorded event names the generation that checked it, and the
	// rings witnessed more than one generation.
	gens := map[uint16]bool{}
	for i, c := range chks {
		for _, ev := range c.Recorder().Ring().Snapshot() {
			if ev.SpecGen == 0 {
				t.Fatalf("session %d: event without spec generation: %+v", i, ev)
			}
			gens[ev.SpecGen] = true
		}
	}
	if len(gens) < 2 {
		t.Errorf("events witnessed %d generations, want >= 2 under continuous swapping", len(gens))
	}
	if got := reg.Snapshot().Device(specA.Device).Swaps; got != sh.SwapCount() {
		t.Errorf("registry swaps = %d, engine swaps = %d", got, sh.SwapCount())
	}
}

// TestSwapDuringRoundStampsOldGeneration pins the grace-period contract:
// a swap published while a round is mid-check does not retroactively
// change which spec version checked that round — the anomaly carries the
// old generation even though the engine has already moved on.
func TestSwapDuringRoundStampsOldGeneration(t *testing.T) {
	_, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	specB := roundTrip(t, att, spec)
	sh := sedspec.NewSharedChecker(spec)
	genBefore := sh.Generation()

	// The halt hook runs in the middle of the blocking round. It launches
	// a swap from another goroutine and waits for the new version to be
	// published before letting the round finish — so publication is
	// strictly ordered inside this round's check.
	swapDone := make(chan error, 1)
	chk := sedspec.ProtectShared(att, sh, checker.WithHalt(func() {
		go func() { swapDone <- sh.Swap(specB) }()
		for sh.Generation() == genBefore {
			runtime.Gosched()
		}
	}))

	d := sedspec.NewDriver(att)
	if err := benignTrain(d); err != nil {
		t.Fatal(err)
	}
	_, err := d.Out8(testdev.PortCmd, testdev.CmdDiag) // off-spec: blocks mid-round
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) {
		t.Fatalf("off-spec command not blocked: %v", err)
	}
	if err := <-swapDone; err != nil {
		t.Fatalf("Swap during round: %v", err)
	}

	if anom.SpecGen != genBefore {
		t.Errorf("mid-swap anomaly generation = %d, want the old %d", anom.SpecGen, genBefore)
	}
	if sh.Generation() != genBefore+1 {
		t.Errorf("engine generation = %d, want %d", sh.Generation(), genBefore+1)
	}
	// The very next round adopts the new version.
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdReset); err != nil {
		t.Fatal(err)
	}
	if chk.SpecGen() != genBefore+1 {
		t.Errorf("session generation after swap = %d, want %d", chk.SpecGen(), genBefore+1)
	}
}

// TestRollbackRecoveryAcrossSwap composes rollback recovery with
// hot-swap: an exploit blocked before and after a swap rolls the machine
// back both times, each anomaly naming the spec version that actually
// checked it, and the tenant keeps being served throughout.
func TestRollbackRecoveryAcrossSwap(t *testing.T) {
	m, att := setup(t, testdev.Options{})
	spec := learn(t, att).Spec
	specB := roundTrip(t, att, spec)
	sh := sedspec.NewSharedChecker(spec)
	chk, guard := sedspec.ProtectSharedWithRollback(att, sh, 8)

	d := sedspec.NewDriver(att)
	if err := benignTrain(d); err != nil {
		t.Fatal(err)
	}

	attack := func(wantGen uint64, wantRecoveries int) {
		t.Helper()
		err := venomExploit(d, 32)
		var anom *sedspec.Anomaly
		if !errors.As(err, &anom) {
			t.Fatalf("exploit not blocked: %v", err)
		}
		if anom.SpecGen != wantGen {
			t.Errorf("anomaly generation = %d, want %d", anom.SpecGen, wantGen)
		}
		if guard.Recoveries != wantRecoveries {
			t.Errorf("recoveries = %d, want %d", guard.Recoveries, wantRecoveries)
		}
		if m.Halted() {
			t.Fatal("rollback should leave the machine running")
		}
		if err := benignTrain(d); err != nil {
			t.Fatalf("post-recovery benign traffic blocked: %v", err)
		}
	}

	attack(1, 1)
	if err := sh.Swap(specB); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	attack(2, 2)
	if got := chk.Stats().Blocked; got != 2 {
		t.Errorf("blocked attempts = %d, want 2", got)
	}
}
