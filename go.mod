module sedspec

go 1.22
