// Storageaudit: run two storage controllers (SDHCI and SCSI) on one
// machine under enhancement mode — the availability-first working mode
// that warns on conditional/indirect anomalies instead of halting — and
// print the audit trail that rare-but-legitimate commands produce, while a
// real exploit (CVE-2021-3409) still blocks hard.
package main

import (
	"errors"
	"fmt"
	"log"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/scsi"
	"sedspec/internal/devices/sdhci"
	"sedspec/internal/machine"
	"sedspec/internal/workload"
)

func main() {
	m := sedspec.NewMachine(machine.WithMemory(1 << 20))
	sd := sdhci.New(sdhci.Options{})
	sdAtt := m.Attach(sd, machine.WithMMIO(0x1000, sdhci.RegionSize))
	sc := scsi.New(scsi.Options{})
	scAtt := m.Attach(sc, machine.WithPIO(0x100, scsi.PortCount))

	sdSpec, err := sedspec.Learn(sdAtt, func(d *sedspec.Driver) error {
		return workload.TrainSDHCI(d, workload.TrainConfig{})
	})
	if err != nil {
		log.Fatal(err)
	}
	scSpec, err := sedspec.Learn(scAtt, func(d *sedspec.Driver) error {
		return workload.TrainSCSI(d, workload.TrainConfig{})
	})
	if err != nil {
		log.Fatal(err)
	}

	sdChk := sedspec.Protect(sdAtt, sdSpec, checker.WithMode(checker.ModeEnhancement))
	scChk := sedspec.Protect(scAtt, scSpec, checker.WithMode(checker.ModeEnhancement))

	// Regular storage traffic on both devices.
	sdg := sdhci.NewGuest(sedspec.NewDriver(sdAtt))
	must(sdg.InitCard())
	must(sdg.Transfer(true, 512, 4))
	must(sdg.Transfer(false, 512, 4))

	scg := scsi.NewGuest(sedspec.NewDriver(scAtt))
	must(scg.TestUnitReady())
	must(scg.Write10(64, 4))
	must(scg.Read10(64, 4))

	// Rare-but-legitimate commands: in enhancement mode these warn and
	// proceed (the Table II false-positive tail), keeping the tenant's
	// storage available.
	must(sdg.GenCmd())     // SD CMD56, absent from training
	must(scg.SelNATN())    // ESP select-without-ATN, absent from training
	must(scg.Read10(8, 1)) // traffic continues after the warnings

	fmt.Println("audit trail (warnings, execution continued):")
	for _, wrn := range append(sdChk.Warnings(), scChk.Warnings()...) {
		fmt.Printf("  [%s] %s: %s\n", wrn.Device, wrn.Strategy, wrn.Detail)
	}
	fmt.Printf("resyncs after warnings: sdhci=%d scsi=%d\n",
		sdChk.Stats().Resyncs, scChk.Stats().Resyncs)

	// A real exploit still blocks hard: parameter-check anomalies halt
	// even in enhancement mode (CVE-2021-3409's mid-transfer BLKSIZE
	// shrink).
	fmt.Println("launching CVE-2021-3409 against sdhci ...")
	must(sdg.Write32(sdhci.RegSDMA, sdg.DMABuf))
	must(sdg.Write16(sdhci.RegBlkSize, 512))
	must(sdg.Write16(sdhci.RegBlkCnt, 4))
	must(sdg.Command(sdhci.CmdWriteMulti, 0))
	must(sdg.Write16(sdhci.RegBlkSize, 64))
	err = sdg.ResumeDMA()
	var anom *sedspec.Anomaly
	if !errors.As(err, &anom) {
		log.Fatalf("exploit was not blocked: %v", err)
	}
	fmt.Printf("blocked by %s: %s\n", anom.Strategy, anom.Detail)
	fmt.Printf("machine halted: %v\n", m.Halted())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
