// Netguard: protect the PCNet network adapter in enhancement mode while
// traffic flows, then demonstrate the paper's PCNet case studies —
// CVE-2015-7504 caught by the indirect-jump check at the moment the
// corrupted interrupt callback would fire, and CVE-2016-7909's
// emulation-hang caught by the conditional-jump check before the device
// spins.
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/pcnet"
	"sedspec/internal/machine"
	"sedspec/internal/workload"
)

func main() {
	m := sedspec.NewMachine(machine.WithMemory(1 << 20))
	dev := pcnet.New(pcnet.Options{}) // all three CVEs present
	att := m.Attach(dev, machine.WithPIO(0, pcnet.PortCount))

	spec, err := sedspec.Learn(att, func(d *sedspec.Driver) error {
		return workload.TrainPCNet(d, workload.TrainConfig{})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(spec.String())

	chk := sedspec.Protect(att, spec, checker.WithBudget(200_000))

	// Regular traffic: bring the adapter up and push frames both ways.
	g := pcnet.NewGuest(sedspec.NewDriver(att))
	g.RxLen = 4
	must(g.Setup(0))
	for i := 0; i < 32; i++ {
		must(g.Transmit(make([]byte, 64+i*40)))
		must(g.AckInterrupts())
		must(g.ProvideRx(uint16(i % 4)))
		must(g.InjectWireFrame(make([]byte, 128+i*32)))
		must(g.AckInterrupts())
	}
	fmt.Printf("traffic: %d rounds checked, no anomalies\n", chk.Stats().Rounds)

	// CVE-2015-7504: a 4096-byte frame whose FCS append lands on the
	// interrupt callback pointer. The parameter check cannot see it (the
	// index is a temporary), but the indirect-jump check refuses the
	// corrupted pointer before it is invoked.
	fmt.Println("launching CVE-2015-7504 ...")
	gadget := uint32(dev.Program().HandlerIndex("host_gadget"))
	frame := make([]byte, pcnet.BufSize)
	binary.LittleEndian.PutUint32(frame[pcnet.BufSize-4:], gadget)
	must(g.ProvideRx(0))
	err = g.InjectWireFrame(frame)
	report(err)

	// Fresh machine for the denial-of-service case.
	m2 := sedspec.NewMachine(machine.WithMemory(1 << 20))
	dev2 := pcnet.New(pcnet.Options{})
	att2 := m2.Attach(dev2, machine.WithPIO(0, pcnet.PortCount))
	spec2, err := sedspec.Learn(att2, func(d *sedspec.Driver) error {
		return workload.TrainPCNet(d, workload.TrainConfig{Light: true})
	})
	if err != nil {
		log.Fatal(err)
	}
	sedspec.Protect(att2, spec2, checker.WithBudget(100_000))

	fmt.Println("launching CVE-2016-7909 (RCVRL = 0 emulation hang) ...")
	g2 := pcnet.NewGuest(sedspec.NewDriver(att2))
	g2.RxLen = 0
	must(g2.Setup(0))
	err = g2.InjectWireFrame(make([]byte, 64))
	report(err)
}

func report(err error) {
	var anom *sedspec.Anomaly
	if errors.As(err, &anom) {
		fmt.Printf("blocked by %s: %s\n", anom.Strategy, anom.Detail)
		return
	}
	log.Fatalf("exploit was not blocked: %v", err)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
