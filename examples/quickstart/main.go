// Quickstart: learn an execution specification for the emulated floppy
// disk controller, attach the ES-Checker, confirm that normal guest I/O
// passes, and watch the Venom exploit (CVE-2015-3456) get blocked before
// it reaches the device.
package main

import (
	"errors"
	"fmt"
	"log"

	"sedspec"
	"sedspec/internal/devices/fdc"
	"sedspec/internal/machine"
	"sedspec/internal/workload"
)

func main() {
	// A machine with one (unpatched, vulnerable) floppy controller.
	m := sedspec.NewMachine()
	dev := fdc.New(fdc.Options{})
	att := m.Attach(dev, machine.WithPIO(0x3f0, fdc.PortCount))

	// Phase 1+2: trace benign training samples, select device-state
	// parameters, construct the ES-CFG.
	spec, err := sedspec.Learn(att, func(d *sedspec.Driver) error {
		return workload.TrainFDC(d, workload.TrainConfig{})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(spec.String())

	// Phase 3: runtime protection.
	chk := sedspec.Protect(att, spec)

	// Normal guest activity flows through untouched. (The Driver
	// dispatches directly to the attachment, so guest helpers use
	// window-relative port numbers.)
	g := fdc.NewGuest(sedspec.NewDriver(att))
	must(g.Reset())
	must(g.Recalibrate())
	must(g.Seek(0, 5))
	must(g.WriteSectors(5, 0, 1, 4))
	must(g.ReadSectors(5, 0, 1, 4))
	fmt.Printf("benign I/O: %d rounds checked, no anomalies\n", chk.Stats().Rounds)

	// The Venom exploit: an invalid command leaves the FIFO length at
	// zero; each further byte walks data_pos toward — and past — the
	// 512-byte FIFO. SEDSpec stops it at the boundary.
	fmt.Println("launching CVE-2015-3456 (Venom) ...")
	err = g.PushFIFO(0x77) // invalid command byte
	for i := 0; err == nil && i < 600; i++ {
		err = g.PushFIFO(0x42)
	}
	var anom *sedspec.Anomaly
	if errors.As(err, &anom) {
		fmt.Printf("blocked by %s: %s\n", anom.Strategy, anom.Detail)
	} else {
		log.Fatalf("exploit was not blocked: %v", err)
	}
	if m.Halted() {
		fmt.Println("machine halted in protection mode; the device state is intact:")
	}
	pos, _ := dev.State().IntByName("data_pos")
	fmt.Printf("  data_pos = %d (never escaped the FIFO)\n", pos)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
