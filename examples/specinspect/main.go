// Specinspect: build the execution specification for any of the five
// devices and dump everything the construction produced — the selected
// device-state parameters (Table I view), construction statistics, the
// command access table, learned indirect-call targets, and the ES-CFG in
// Graphviz form — plus a JSON round-trip of the persisted specification.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"sedspec"
	"sedspec/internal/bench"
	"sedspec/internal/core"
	"sedspec/internal/machine"
)

func main() {
	device := flag.String("device", "sdhci", "fdc | ehci | pcnet | sdhci | scsi")
	dotPath := flag.String("dot", "", "write the ES-CFG to this Graphviz file")
	flag.Parse()

	target := bench.TargetByName(*device, false)
	if target == nil {
		log.Fatalf("unknown device %q", *device)
	}

	m := machine.New(machine.WithMemory(1 << 20))
	dev, opts := target.Build()
	att := m.Attach(dev, opts...)

	r, err := sedspec.LearnFull(att, target.Train)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(r.Spec.String())
	fmt.Print(r.Params.String())

	fmt.Printf("ITC-CFG: %d nodes, %d edges over %d traced runs (%.1f%% block coverage)\n",
		r.Graph.NumNodes(), r.Graph.NumEdges(), r.Graph.Runs(), 100*r.Graph.BlockCoverage())
	fmt.Printf("trace: %d packets (%d raw events; %d dropped by range filter, %d by ring filter)\n",
		r.Trace.Packets, r.Trace.Events, r.Trace.FilteredRange, r.Trace.FilteredKernel)
	fmt.Printf("device-state-change log: %d rounds\n", len(r.Log.Rounds))

	fmt.Printf("command access table: %d commands, %d globally accessible blocks\n",
		r.Spec.CmdTable.Commands(), len(r.Spec.CmdTable.Global))
	for field, targets := range r.Spec.IndirectTargets {
		prog := dev.Program()
		fmt.Printf("indirect targets of %q:", prog.Fields[field].Name)
		for t := range targets {
			fmt.Printf(" %s", prog.Handlers[t].Name)
		}
		fmt.Println()
	}

	// Persist and reload the specification to show the JSON form works.
	var buf bytes.Buffer
	if err := r.Spec.Save(&buf); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	reloaded, err := core.Load(dev.Program(), &buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JSON round-trip: %d bytes, %d ES blocks reloaded\n",
		size, reloaded.Stats.ESBlocks)

	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(r.Spec.Dot()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ES-CFG written to %s\n", *dotPath)
	}
}
