// Fusion-coverage acceptance for the threaded-code lowering: an
// independent greedy scan over each benchmark device's sealed DSOD
// re-derives which peephole patterns the op streams offer, and the
// lowering report must account for exactly those — every used pattern
// present with the right count, no phantom pairs, and the instruction
// stream length obeying the compaction arithmetic. A device whose spec
// offers no fusion at all fails loudly: the fused fast path would be
// silently unexercised.
package sedspec_test

import (
	"testing"

	"sedspec/internal/bench"
	"sedspec/internal/core"
	"sedspec/internal/ir"
)

// pairName restates the peephole pattern table from DESIGN.md
// independently of the fuser: the fusable adjacent op-code pairs and the
// report keys they count under.
func pairName(a, b ir.OpCode) (string, bool) {
	switch a {
	case ir.OpLoad:
		switch b {
		case ir.OpArith:
			return "load+arith", true
		case ir.OpConst:
			return "load+const", true
		}
	case ir.OpConst:
		switch b {
		case ir.OpArith:
			return "const+arith", true
		case ir.OpStore:
			return "const+store", true
		case ir.OpBufStore:
			return "const+bufstore", true
		case ir.OpConst:
			return "const+const", true
		}
	case ir.OpArith:
		if b == ir.OpStore {
			return "arith+store", true
		}
	case ir.OpBufLoad:
		if b == ir.OpStore {
			return "bufload+store", true
		}
	case ir.OpBufStore:
		if b == ir.OpConst {
			return "bufstore+const", true
		}
	case ir.OpStore:
		switch b {
		case ir.OpConst:
			return "store+const", true
		case ir.OpLoad:
			return "store+load", true
		}
	}
	return "", false
}

// expectedFusion greedily scans every live block's op run left to right —
// the fuser's documented strategy — and returns the per-pattern pair
// counts it should produce, the total op count, and the live block count.
func expectedFusion(s *core.SealedSpec) (pairs map[string]int, ops, live int) {
	pairs = map[string]int{}
	for id := 0; id < s.NumBlocks(); id++ {
		b := s.Block(id)
		if b == nil {
			continue
		}
		live++
		dsod := s.DSOD(b)
		ops += len(dsod)
		for i := 0; i < len(dsod); {
			if i+1 < len(dsod) {
				if name, ok := pairName(dsod[i].Op.Code, dsod[i+1].Op.Code); ok {
					pairs[name]++
					i += 2
					continue
				}
			}
			// Trailing compare feeding the block's conditional branch
			// fuses into the terminator.
			if i == len(dsod)-1 && dsod[i].Op.Code == ir.OpArith &&
				b.HasNBTD && b.TermKind == ir.TermBranch && b.Term != nil &&
				(b.Term.A == dsod[i].Op.Dst || b.Term.B == dsod[i].Op.Dst) {
				pairs["arith+branch"]++
			}
			i++
		}
	}
	return pairs, ops, live
}

func TestFusionCoverage(t *testing.T) {
	for _, target := range bench.Targets(true) {
		t.Run(target.Name, func(t *testing.T) {
			r, err := bench.NewCheckerReplay(target, 60)
			if err != nil {
				t.Fatal(err)
			}
			sealed := r.Spec.Seal()
			rep := &sealed.Threaded().Report

			wantPairs, wantOps, live := expectedFusion(sealed)
			if len(wantPairs) == 0 {
				t.Fatal("device spec offers no fusion opportunities; the fused fast path is unexercised")
			}
			if rep.Ops != wantOps {
				t.Errorf("report ops = %d, independent scan counted %d", rep.Ops, wantOps)
			}
			for name, n := range wantPairs {
				if got := rep.Pairs[name]; got != n {
					t.Errorf("pattern %q: report %d pairs, independent scan %d", name, got, n)
				}
			}
			for name, n := range rep.Pairs {
				if want := wantPairs[name]; want != n {
					t.Errorf("pattern %q: report claims %d pairs, scan expects %d", name, n, want)
				}
			}

			// Stream-length conservation: one shared dangling instruction,
			// one terminator per live block, and each fused pair removes one
			// op instruction (a branch-fused arith removes its only one).
			if want := 1 + live + rep.Ops - rep.Elided - rep.FusedPairs(); rep.Instrs != want {
				t.Errorf("instr conservation: %d instrs, want 1 + %d live + %d ops - %d elided - %d pairs = %d",
					rep.Instrs, live, rep.Ops, rep.Elided, rep.FusedPairs(), want)
			}
			if d := rep.FusedDensity(); d <= 0 || d > 1 {
				t.Errorf("fused density = %.3f, want in (0, 1]", d)
			}

			// The coverage profile republishes the same statistics for
			// drift reports.
			low := sealed.CoverageProfile(1, nil).Lowering
			if low == nil {
				t.Fatal("coverage profile carries no lowering statistics")
			}
			if low.Ops != rep.Ops || low.Instrs != rep.Instrs ||
				low.FusedPairs != rep.FusedPairs() || low.Density != rep.FusedDensity() {
				t.Errorf("profile lowering %+v diverges from report (ops %d instrs %d pairs %d density %.3f)",
					low, rep.Ops, rep.Instrs, rep.FusedPairs(), rep.FusedDensity())
			}
		})
	}
}
